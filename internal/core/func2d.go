package core

import (
	"errors"
	"fmt"
	"sync"

	"green/internal/model"
)

// This file implements two extensions the paper identifies but leaves to
// future work:
//
//   - Func2 approximates functions of *two* numeric parameters (footnote
//     1: "this can be extended to multiple parameters") using the 2-D
//     grid model from internal/model.
//   - Site gives each call site of an approximated function its own
//     recalibration state (§3.2.2: "our current implementation does not
//     differentiate between call sites and uses the same QoS_Approx()
//     function for all sites"). Sites share the calibration model but
//     adjust precision independently, so a call site seeing harder inputs
//     can run more precisely without slowing the others down.

// Fn2 is a two-parameter function candidate for approximation.
type Fn2 func(x, y float64) float64

// Func2Config configures a two-parameter approximable function.
type Func2Config struct {
	// Name identifies the function in reports.
	Name string
	// Model is the 2-D grid QoS model from the calibration phase.
	Model *model.FuncModel2D
	// SLA is the maximal tolerated fractional QoS loss; it must lie in
	// (0,1].
	SLA float64
	// SampleInterval is Sample_QoS; zero disables recalibration and
	// negative values are rejected.
	SampleInterval int
	// Policy is the recalibration policy; nil selects DefaultPolicy.
	Policy RecalibratePolicy
	// QoS overrides the default return-value QoS computation.
	QoS FuncQoS
	// Disabled forces every call to the precise version (overhead
	// experiment and global fallback).
	Disabled bool
	// OnEvent, when non-nil, receives an Event after every monitored
	// call.
	OnEvent EventFunc
	// BreakerThreshold is the number of consecutive contained panics (in
	// the approximate version or the QoS comparator on monitored calls)
	// that trip the circuit breaker to forced-precise operation. Zero
	// means 3; negative disables tripping. See resilience.go.
	BreakerThreshold int
	// BreakerCooldown is the number of calls the breaker stays open
	// before a half-open probe. Zero derives four sampling intervals
	// (minimum 16).
	BreakerCooldown int
}

// func2State is the immutable snapshot Func2's Call fast path reads with
// a single atomic load, published through the embedded controller's
// copy-on-write protocol.
type func2State struct {
	offset   int
	disabled bool
	forceOff bool
}

// Func2 is the two-parameter function controller. It mirrors Func's
// behavior: per-call cheapest-version selection under the SLA, monitored
// sampling with panic containment and a circuit breaker, and
// offset-based recalibration. The counters, sampling decision, breaker,
// policy plumbing, and Stats come from the embedded generic controller;
// the non-monitored path is lock-free.
type Func2 struct {
	controller[func2State]

	cfg      Func2Config
	precise  Fn2
	versions []Fn2
	qos      FuncQoS
}

// NewFunc2 builds the controller; approx must match the model's versions
// one-to-one in increasing precision order.
func NewFunc2(cfg Func2Config, precise Fn2, approx []Fn2) (*Func2, error) {
	if cfg.Model == nil {
		return nil, errors.New("core: func2 requires a model")
	}
	if precise == nil {
		return nil, errors.New("core: func2 requires a precise implementation")
	}
	if len(approx) != len(cfg.Model.Versions) {
		return nil, fmt.Errorf("core: func2 %q: %d versions but model has %d",
			cfg.Name, len(approx), len(cfg.Model.Versions))
	}
	f := &Func2{
		cfg:      cfg,
		precise:  precise,
		versions: append([]Fn2(nil), approx...),
		qos:      cfg.QoS,
	}
	if err := f.init("func2", ctrlOptions{
		Name: cfg.Name, SLA: cfg.SLA, SampleInterval: cfg.SampleInterval,
		Policy: cfg.Policy, OnEvent: cfg.OnEvent,
		BreakerThreshold: cfg.BreakerThreshold, BreakerCooldown: cfg.BreakerCooldown,
	}); err != nil {
		return nil, err
	}
	if f.qos == nil {
		f.qos = defaultFuncQoS
	}
	f.state.Store(&func2State{forceOff: cfg.Disabled})
	return f, nil
}

// Offset returns the recalibration precision offset.
func (f *Func2) Offset() int { return int(f.state.Load().offset) }

// Level reports the precision offset as the controller's approximation
// level (the registry's uniform scalar view; see registry.go).
func (f *Func2) Level() float64 { return float64(f.state.Load().offset) }

// selectVersion applies the model plus the snapshot's offset.
func (f *Func2) selectVersion(st *func2State, x, y float64) int {
	if st.disabled || st.forceOff {
		return model.PreciseVersion
	}
	v := f.cfg.Model.SelectVersion(x, y, f.cfg.SLA)
	if v == model.PreciseVersion {
		return v
	}
	v += st.offset
	if v >= len(f.versions) {
		return model.PreciseVersion
	}
	if v < 0 {
		v = 0
	}
	return v
}

// Call evaluates the function under the approximation policy. On
// monitored calls both the precise and the selected approximate version
// run; the measured loss feeds the recalibration policy and the precise
// result is returned. As with Func, the extra work the monitored path
// adds (the approximate version and the QoS comparator) runs under
// recover; a contained panic discards the observation and charges the
// breaker.
func (f *Func2) Call(x, y float64) float64 {
	st := f.state.Load()
	o := f.stageExecute()
	v := f.selectVersion(st, x, y)
	if o.forced {
		// Breaker open: forced precise, monitoring suspended.
		v = model.PreciseVersion
	}

	if !o.monitor {
		if v == model.PreciseVersion {
			return f.precise(x, y)
		}
		return f.versions[v](x, y)
	}

	yp := f.precise(x, y)
	loss := 0.0
	panicked := false
	if v != model.PreciseVersion {
		if ya, ok := f.safeApprox(v, x, y); ok {
			if lv, ok := f.safeQoS(yp, ya); ok {
				loss = lv
			} else {
				panicked = true
			}
		} else {
			panicked = true
		}
	}

	f.finishObservation(o, loss, panicked, func(st *func2State, a Action) float64 {
		applyOffsetAction(&st.offset, &st.disabled, a, len(f.versions))
		return float64(st.offset)
	})
	return yp
}

// CallN evaluates the function at each (xs[i], ys[i]) pair, writing
// results into zs[i]: the batched Call. One snapshot load, one sampling
// decision, and one counter add cover the whole batch; the monitored
// member (if any) behaves exactly like an unbatched monitored Call and
// later members see the post-recalibration snapshot. zs must be at
// least as long as xs and ys (whose lengths must match).
func (f *Func2) CallN(xs, ys, zs []float64) error {
	n := len(xs)
	if len(ys) != n {
		return fmt.Errorf("core: func2 %q: CallN input lengths differ (%d vs %d)", f.cfg.Name, n, len(ys))
	}
	if len(zs) < n {
		return fmt.Errorf("core: func2 %q: CallN output slice %d shorter than input %d", f.cfg.Name, len(zs), n)
	}
	if n == 0 {
		return nil
	}
	st := f.state.Load()
	o := f.stageExecuteBatch(n)
	if o.forced {
		// Breaker open: the whole batch runs precise, monitoring
		// suspended.
		for i := 0; i < n; i++ {
			zs[i] = f.precise(xs[i], ys[i])
		}
		return nil
	}
	for i := 0; i < n; i++ {
		x, y := xs[i], ys[i]
		v := f.selectVersion(st, x, y)
		if i != o.monitorAt {
			if v == model.PreciseVersion {
				zs[i] = f.precise(x, y)
			} else {
				zs[i] = f.versions[v](x, y)
			}
			continue
		}
		// Monitored member: Call's monitored path, inline.
		zp := f.precise(x, y)
		loss := 0.0
		panicked := false
		if v != model.PreciseVersion {
			if za, ok := f.safeApprox(v, x, y); ok {
				if lv, ok := f.safeQoS(zp, za); ok {
					loss = lv
				} else {
					panicked = true
				}
			} else {
				panicked = true
			}
		}
		zs[i] = zp
		f.finishObservation(obs{seq: o.first + int64(i), monitor: true, probe: o.probe}, loss, panicked,
			func(st *func2State, a Action) float64 {
				applyOffsetAction(&st.offset, &st.disabled, a, len(f.versions))
				return float64(st.offset)
			})
		st = f.state.Load()
	}
	return nil
}

// safeApprox runs approximate version v under recover.
func (f *Func2) safeApprox(v int, x, y float64) (z float64, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			z, ok = 0, false
		}
	}()
	return f.versions[v](x, y), true
}

// safeQoS runs the QoS comparator under recover.
func (f *Func2) safeQoS(yp, ya float64) (loss float64, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			loss, ok = 0, false
		}
	}()
	return f.qos(yp, ya), true
}

// IncreaseAccuracy implements Unit.
func (f *Func2) IncreaseAccuracy() bool {
	changed := false
	f.mutate(func(st *func2State) {
		before := st.offset
		applyOffsetAction(&st.offset, &st.disabled, ActIncrease, len(f.versions))
		changed = st.offset != before
	})
	return changed
}

// DecreaseAccuracy implements Unit.
func (f *Func2) DecreaseAccuracy() bool {
	changed := false
	f.mutate(func(st *func2State) {
		before := st.offset
		applyOffsetAction(&st.offset, &st.disabled, ActDecrease, len(f.versions))
		changed = st.offset != before
	})
	return changed
}

// Sensitivity implements Unit: the mean modeled loss improvement per
// unit of relative work increase when shifting each covered grid cell's
// selected version one step more precise.
func (f *Func2) Sensitivity() float64 {
	st := f.state.Load()
	m := f.cfg.Model
	cells := m.Grid.NX * m.Grid.NY

	var dLoss, dWork float64
	n := 0
	for idx := 0; idx < cells; idx++ {
		// Cheapest version meeting the SLA in this cell (SelectVersion's
		// rule), then the recalibration offset, as selectVersion applies.
		base := model.PreciseVersion
		bestWork := m.PreciseWork
		for vi := range m.Versions {
			v := &m.Versions[vi]
			if v.Loss[idx] <= f.cfg.SLA && v.Work < bestWork {
				base = vi
				bestWork = v.Work
			}
		}
		if base == model.PreciseVersion {
			continue
		}
		cur := base + st.offset
		if cur < 0 {
			cur = 0
		}
		if cur >= len(m.Versions) {
			continue // already precise here
		}
		lossCur := m.Versions[cur].Loss[idx]
		if !finite(lossCur) {
			continue // uncalibrated cell
		}
		var lossUp, workUp float64
		if cur+1 >= len(m.Versions) {
			lossUp, workUp = 0, m.PreciseWork
		} else {
			lossUp, workUp = m.Versions[cur+1].Loss[idx], m.Versions[cur+1].Work
			if !finite(lossUp) {
				lossUp = 0
			}
		}
		dLoss += lossCur - lossUp
		dWork += (workUp - m.Versions[cur].Work) / m.PreciseWork
		n++
	}
	if n == 0 || dWork <= 0 {
		return 0
	}
	return dLoss / dWork
}

// DisableApprox implements Unit; the disable is sticky — only
// EnableApprox clears it.
func (f *Func2) DisableApprox() {
	f.mutate(func(st *func2State) { st.forceOff = true })
}

// EnableApprox re-enables approximation after DisableApprox.
func (f *Func2) EnableApprox() {
	f.mutate(func(st *func2State) {
		st.forceOff = false
		st.disabled = false
	})
}

// ApproxEnabled implements Unit.
func (f *Func2) ApproxEnabled() bool {
	st := f.state.Load()
	return !st.disabled && !st.forceOff
}

// SiteSet manages per-call-site controllers for one approximated
// function. Each Site shares the model and implementations but owns its
// recalibration offset, sampling counter, and statistics.
type SiteSet struct {
	cfg      FuncConfig
	precise  Fn
	versions []Fn

	mu    sync.Mutex
	sites map[string]*Func
}

// NewSiteSet prepares per-site controllers; the arguments mirror NewFunc.
func NewSiteSet(cfg FuncConfig, precise Fn, approx []Fn) (*SiteSet, error) {
	// Validate eagerly by constructing (and discarding) one controller.
	if _, err := NewFunc(cfg, precise, approx); err != nil {
		return nil, err
	}
	return &SiteSet{
		cfg:      cfg,
		precise:  precise,
		versions: append([]Fn(nil), approx...),
		sites:    make(map[string]*Func),
	}, nil
}

// Site returns the controller for the named call site, creating it on
// first use. Each site carries the paper's per-function logic but with
// independent recalibration state.
func (s *SiteSet) Site(name string) *Func {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.sites[name]; ok {
		return f
	}
	cfg := s.cfg
	cfg.Name = s.cfg.Name + "@" + name
	f, err := NewFunc(cfg, s.precise, s.versions)
	if err != nil {
		// NewSiteSet validated the configuration; a failure here is a
		// programming error.
		panic("core: site construction failed after validation: " + err.Error())
	}
	s.sites[name] = f
	return f
}

// Sites returns the names of the instantiated call sites.
func (s *SiteSet) Sites() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.sites))
	for n := range s.sites {
		names = append(names, n)
	}
	return names
}

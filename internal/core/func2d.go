package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"green/internal/model"
)

// This file implements two extensions the paper identifies but leaves to
// future work:
//
//   - Func2 approximates functions of *two* numeric parameters (footnote
//     1: "this can be extended to multiple parameters") using the 2-D
//     grid model from internal/model.
//   - Site gives each call site of an approximated function its own
//     recalibration state (§3.2.2: "our current implementation does not
//     differentiate between call sites and uses the same QoS_Approx()
//     function for all sites"). Sites share the calibration model but
//     adjust precision independently, so a call site seeing harder inputs
//     can run more precisely without slowing the others down.

// Fn2 is a two-parameter function candidate for approximation.
type Fn2 func(x, y float64) float64

// Func2Config configures a two-parameter approximable function.
type Func2Config struct {
	// Name identifies the function in reports.
	Name string
	// Model is the 2-D grid QoS model from the calibration phase.
	Model *model.FuncModel2D
	// SLA is the maximal tolerated fractional QoS loss; it must lie in
	// (0,1].
	SLA float64
	// SampleInterval is Sample_QoS; zero disables recalibration and
	// negative values are rejected.
	SampleInterval int
	// Policy is the recalibration policy; nil selects DefaultPolicy.
	Policy RecalibratePolicy
	// QoS overrides the default return-value QoS computation.
	QoS FuncQoS
}

// Func2 is the two-parameter function controller. It mirrors Func's
// behavior: per-call cheapest-version selection under the SLA, monitored
// sampling, and offset-based recalibration.
type Func2 struct {
	cfg      Func2Config
	precise  Fn2
	versions []Fn2
	qos      FuncQoS

	offset   atomic.Int64
	count    atomic.Int64
	interval atomic.Int64
	disabled atomic.Bool

	mu        sync.Mutex
	policy    RecalibratePolicy
	monitored int64
	lossSum   float64
}

// NewFunc2 builds the controller; approx must match the model's versions
// one-to-one in increasing precision order.
func NewFunc2(cfg Func2Config, precise Fn2, approx []Fn2) (*Func2, error) {
	if cfg.Model == nil {
		return nil, errors.New("core: func2 requires a model")
	}
	if precise == nil {
		return nil, errors.New("core: func2 requires a precise implementation")
	}
	if len(approx) != len(cfg.Model.Versions) {
		return nil, fmt.Errorf("core: func2 %q: %d versions but model has %d",
			cfg.Name, len(approx), len(cfg.Model.Versions))
	}
	if cfg.SLA <= 0 || cfg.SLA > 1 {
		return nil, fmt.Errorf("core: func2 %q: SLA %v outside (0,1]", cfg.Name, cfg.SLA)
	}
	if cfg.SampleInterval < 0 {
		return nil, fmt.Errorf("core: func2 %q: negative SampleInterval %d", cfg.Name, cfg.SampleInterval)
	}
	f := &Func2{
		cfg:      cfg,
		precise:  precise,
		versions: append([]Fn2(nil), approx...),
		qos:      cfg.QoS,
		policy:   cfg.Policy,
	}
	if f.qos == nil {
		f.qos = func(p, a float64) float64 {
			denom := math.Abs(p)
			if denom < 1e-12 {
				denom = 1e-12
			}
			return math.Abs(a-p) / denom
		}
	}
	if f.policy == nil {
		f.policy = DefaultPolicy{}
	}
	f.interval.Store(int64(cfg.SampleInterval))
	return f, nil
}

// Name returns the configured name.
func (f *Func2) Name() string { return f.cfg.Name }

// Offset returns the recalibration precision offset.
func (f *Func2) Offset() int { return int(f.offset.Load()) }

// selectVersion applies the model plus the current offset.
func (f *Func2) selectVersion(x, y float64) int {
	if f.disabled.Load() {
		return model.PreciseVersion
	}
	v := f.cfg.Model.SelectVersion(x, y, f.cfg.SLA)
	if v == model.PreciseVersion {
		return v
	}
	v += int(f.offset.Load())
	if v >= len(f.versions) {
		return model.PreciseVersion
	}
	if v < 0 {
		v = 0
	}
	return v
}

// Call evaluates the function under the approximation policy.
func (f *Func2) Call(x, y float64) float64 {
	n := f.count.Add(1)
	iv := f.interval.Load()
	monitor := iv > 0 && n%iv == 0
	v := f.selectVersion(x, y)
	if !monitor {
		if v == model.PreciseVersion {
			return f.precise(x, y)
		}
		return f.versions[v](x, y)
	}
	yp := f.precise(x, y)
	loss := 0.0
	if v != model.PreciseVersion {
		loss = f.qos(yp, f.versions[v](x, y))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.monitored++
	f.lossSum += loss
	d := f.policy.Observe(loss, f.cfg.SLA)
	if d.NewSampleInterval > 0 {
		f.interval.Store(int64(d.NewSampleInterval))
	}
	switch d.Action {
	case ActIncrease:
		if off := f.offset.Load(); off < int64(len(f.versions)) {
			f.offset.Store(off + 1)
		}
	case ActDecrease:
		if off := f.offset.Load(); off > -int64(len(f.versions)) {
			f.offset.Store(off - 1)
		}
	}
	return yp
}

// Stats reports runtime counters.
func (f *Func2) Stats() (calls, monitored int64, meanLoss float64) {
	calls = f.count.Load()
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.monitored > 0 {
		meanLoss = f.lossSum / float64(f.monitored)
	}
	return calls, f.monitored, meanLoss
}

// DisableApprox forces precise execution; EnableApprox reverts it.
func (f *Func2) DisableApprox() { f.disabled.Store(true) }

// EnableApprox re-enables approximation after DisableApprox.
func (f *Func2) EnableApprox() { f.disabled.Store(false) }

// ApproxEnabled reports whether approximation is active.
func (f *Func2) ApproxEnabled() bool { return !f.disabled.Load() }

// SiteSet manages per-call-site controllers for one approximated
// function. Each Site shares the model and implementations but owns its
// recalibration offset, sampling counter, and statistics.
type SiteSet struct {
	cfg      FuncConfig
	precise  Fn
	versions []Fn

	mu    sync.Mutex
	sites map[string]*Func
}

// NewSiteSet prepares per-site controllers; the arguments mirror NewFunc.
func NewSiteSet(cfg FuncConfig, precise Fn, approx []Fn) (*SiteSet, error) {
	// Validate eagerly by constructing (and discarding) one controller.
	if _, err := NewFunc(cfg, precise, approx); err != nil {
		return nil, err
	}
	return &SiteSet{
		cfg:      cfg,
		precise:  precise,
		versions: append([]Fn(nil), approx...),
		sites:    make(map[string]*Func),
	}, nil
}

// Site returns the controller for the named call site, creating it on
// first use. Each site carries the paper's per-function logic but with
// independent recalibration state.
func (s *SiteSet) Site(name string) *Func {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.sites[name]; ok {
		return f
	}
	cfg := s.cfg
	cfg.Name = s.cfg.Name + "@" + name
	f, err := NewFunc(cfg, s.precise, s.versions)
	if err != nil {
		// NewSiteSet validated the configuration; a failure here is a
		// programming error.
		panic("core: site construction failed after validation: " + err.Error())
	}
	s.sites[name] = f
	return f
}

// Sites returns the names of the instantiated call sites.
func (s *SiteSet) Sites() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.sites))
	for n := range s.sites {
		names = append(names, n)
	}
	return names
}

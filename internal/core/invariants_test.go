package core

import (
	"math/rand"
	"testing"

	"green/internal/model"
)

// Property: under arbitrary sequences of recalibration pressure, the
// loop's level stays within [MinLevel, BaseLevel] and the controller
// never deadlocks or panics.
func TestLoopLevelBoundedUnderRandomPressure(t *testing.T) {
	m := testLoopModel(t)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		l, err := NewLoop(LoopConfig{
			Name: "inv", Model: m, SLA: 0.05, SampleInterval: 1,
			Step: float64(10 + rng.Intn(500)),
		})
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 60; step++ {
			q := &fakeQoS{lossValue: rng.Float64() * 0.2}
			e, err := l.Begin(q)
			if err != nil {
				t.Fatal(err)
			}
			i := 0
			for ; i < 3200; i++ {
				if !e.Continue(i) {
					break
				}
			}
			e.Finish(i)
			lvl := l.Level()
			if lvl < 100-1e-9 || lvl > 3200+1e-9 {
				t.Fatalf("level %v escaped [100, 3200]", lvl)
			}
		}
	}
}

// Property: the function offset saturates within [-nVersions, nVersions]
// under arbitrary action sequences, and selection never indexes out of
// bounds.
func TestFuncOffsetBoundedUnderRandomPressure(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 30; trial++ {
		f := funcFixture(t, 0.2, 1)
		f.qos = func(p, a float64) float64 { return rng.Float64() * 0.5 }
		for call := 0; call < 200; call++ {
			x := rng.Float64() * 12 // sometimes outside the domain
			_ = f.Call(x)
			off := f.Offset()
			if off < -len(f.versions) || off > len(f.versions) {
				t.Fatalf("offset %d escaped bounds", off)
			}
		}
	}
}

// Property: a monitored execution must always return the precise result
// for functions, regardless of the recalibration state.
func TestFuncMonitoredAlwaysPrecise(t *testing.T) {
	f := funcFixture(t, 0.2, 1) // every call monitored
	rng := rand.New(rand.NewSource(103))
	for i := 0; i < 100; i++ {
		x := rng.Float64() * 10
		if got := f.Call(x); got != x*x {
			t.Fatalf("monitored Call(%v) = %v, want precise %v", x, got, x*x)
		}
	}
}

// Property: concurrent Call is race-free and conserves the call count.
func TestFuncConcurrentCalls(t *testing.T) {
	f := funcFixture(t, 0.2, 10)
	const goroutines = 8
	const per = 500
	done := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		go func(seed int64) {
			defer func() { done <- struct{}{} }()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				f.Call(rng.Float64() * 10)
			}
		}(int64(g))
	}
	for g := 0; g < goroutines; g++ {
		<-done
	}
	calls, monitored, _ := f.Stats()
	if calls != goroutines*per {
		t.Errorf("calls = %d, want %d", calls, goroutines*per)
	}
	if monitored == 0 {
		t.Error("no monitored calls despite sampling")
	}
	if f.Work() <= 0 {
		t.Error("no work accounted")
	}
}

// Property: a loop execution is internally consistent — a run that
// reports Approximated must have StoppedAt >= 0 and must not be
// Monitored; a monitored run never terminates early.
func TestLoopResultConsistency(t *testing.T) {
	m := testLoopModel(t)
	l, err := NewLoop(LoopConfig{
		Name: "cons", Model: m, SLA: 0.05, SampleInterval: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 30; run++ {
		q := &fakeQoS{lossValue: 0.049}
		e, err := l.Begin(q)
		if err != nil {
			t.Fatal(err)
		}
		i := 0
		for ; i < 3200; i++ {
			if !e.Continue(i) {
				break
			}
		}
		res := e.Finish(i)
		if res.Approximated && res.Monitored {
			t.Fatal("run both approximated and monitored")
		}
		if res.Approximated && res.StoppedAt < 0 {
			t.Fatal("approximated without a stop point")
		}
		if res.Monitored && i != 3200 {
			t.Fatalf("monitored run stopped early at %d", i)
		}
		if !res.Monitored && res.Loss != 0 {
			t.Fatal("non-monitored run reported a loss")
		}
	}
}

// Property: StaticParams-derived levels always satisfy the SLA in the
// model's own prediction, across random SLAs (the model/controller
// contract the operational phase relies on).
func TestLoopModelControllerContract(t *testing.T) {
	m := testLoopModel(t)
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 200; trial++ {
		sla := 0.002 + rng.Float64()*0.2
		l, err := NewLoop(LoopConfig{Name: "c", Model: m, SLA: sla})
		if err != nil {
			t.Fatal(err)
		}
		if !l.ApproxEnabled() {
			continue // unsatisfiable: precise fallback, trivially safe
		}
		if pred := m.PredictLoss(l.Level()); pred > sla+1e-9 {
			t.Fatalf("SLA %v: level %v predicts loss %v", sla, l.Level(), pred)
		}
	}
}

// Failure injection: a policy that always increases must drive the level
// to the base and stop there; one that always decreases must floor at
// MinLevel.
type constPolicy struct{ a Action }

func (p constPolicy) Observe(float64, float64) Decision { return Decision{Action: p.a} }

func TestLoopSaturationUnderConstantPolicy(t *testing.T) {
	m := testLoopModel(t)
	for _, tc := range []struct {
		act  Action
		want float64
	}{
		{ActIncrease, 3200},
		{ActDecrease, 100},
	} {
		l, err := NewLoop(LoopConfig{
			Name: "sat", Model: m, SLA: 0.05, SampleInterval: 1,
			Policy: constPolicy{tc.act}, Step: 500,
		})
		if err != nil {
			t.Fatal(err)
		}
		for run := 0; run < 20; run++ {
			q := &fakeQoS{}
			e, _ := l.Begin(q)
			i := 0
			for ; i < 3200 && e.Continue(i); i++ {
			}
			e.Finish(i)
		}
		if got := l.Level(); got != tc.want {
			t.Errorf("action %v: level = %v, want %v", tc.act, got, tc.want)
		}
	}
}

// Failure injection: models whose points all carry identical loss still
// invert deterministically.
func TestFlatLossModel(t *testing.T) {
	pts := []model.CalPoint{
		{Level: 10, QoSLoss: 0.05, Work: 10},
		{Level: 20, QoSLoss: 0.05, Work: 20},
		{Level: 40, QoSLoss: 0.05, Work: 40},
	}
	m, err := model.BuildLoopModel("flat", pts, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	lvl, err := m.StaticParams(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if lvl != 10 {
		t.Errorf("flat model M = %v, want the cheapest level 10", lvl)
	}
	if _, err := m.StaticParams(0.049); err != model.ErrUnsatisfiable {
		t.Errorf("err = %v, want ErrUnsatisfiable", err)
	}
}

package core

import (
	"testing"
)

func TestLoopEmitsEventsOnMonitoredRuns(t *testing.T) {
	var events []Event
	m := testLoopModel(t)
	l, err := NewLoop(LoopConfig{
		Name: "evt", Model: m, SLA: 0.05, SampleInterval: 2,
		OnEvent: func(e Event) { events = append(events, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 6; run++ {
		q := &fakeQoS{lossValue: 0.5}
		e, _ := l.Begin(q)
		i := 0
		for ; i < 3200 && e.Continue(i); i++ {
		}
		e.Finish(i)
	}
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3 (every 2nd run)", len(events))
	}
	for _, e := range events {
		if e.Unit != "evt" || e.SLA != 0.05 {
			t.Errorf("bad event metadata: %+v", e)
		}
		if e.Loss != 0.5 {
			t.Errorf("loss = %v", e.Loss)
		}
		if e.Action != ActIncrease {
			t.Errorf("action = %v, want increase", e.Action)
		}
		if e.Level <= 0 {
			t.Errorf("level = %v", e.Level)
		}
	}
	// Levels must be non-decreasing under constant increase pressure.
	for i := 1; i < len(events); i++ {
		if events[i].Level < events[i-1].Level {
			t.Errorf("levels regressed: %v", events)
		}
	}
}

func TestFuncEmitsEventsOnMonitoredCalls(t *testing.T) {
	var events []Event
	f := funcFixture(t, 0.2, 2)
	f.onEvent = func(e Event) { events = append(events, e) }
	for i := 0; i < 6; i++ {
		f.Call(2)
	}
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	for _, e := range events {
		if e.Unit != "sq" || e.SLA != 0.2 {
			t.Errorf("bad event: %+v", e)
		}
	}
}

// Callbacks run outside the lock, so re-entrant reads must not deadlock.
func TestEventCallbackMayReadController(t *testing.T) {
	m := testLoopModel(t)
	var l *Loop
	var err error
	l, err = NewLoop(LoopConfig{
		Name: "reent", Model: m, SLA: 0.05, SampleInterval: 1,
		OnEvent: func(Event) {
			_ = l.Level()
			_, _, _ = l.Stats()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	q := &fakeQoS{lossValue: 0.01}
	e, _ := l.Begin(q)
	i := 0
	for ; i < 3200 && e.Continue(i); i++ {
	}
	e.Finish(i) // must not deadlock
}

package core

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// The loss accumulator's conservation contract: across any interleaving
// of concurrent add, sum, and drain, every loss lands in exactly one of
// (a) some drain's return value or (b) the final residual sum — nothing
// dropped, nothing double-counted. The tests use integer-valued floats
// (exact under float64 addition well past these magnitudes), so the
// checks are equality, not tolerance.

func TestLossShardCount(t *testing.T) {
	n := lossShardCount()
	if n < 8 {
		t.Errorf("shard count %d below floor 8", n)
	}
	if n&(n-1) != 0 {
		t.Errorf("shard count %d not a power of two", n)
	}
	if n < runtime.GOMAXPROCS(0) {
		t.Errorf("shard count %d below GOMAXPROCS %d", n, runtime.GOMAXPROCS(0))
	}
}

func TestLossAccumulatorSumDrain(t *testing.T) {
	var a lossAccumulator
	a.init(8)
	total := 0.0
	for i := 0; i < 100; i++ {
		v := float64(i + 1)
		a.add(v, uint64(i))
		total += v
	}
	if got := a.sum(); got != total {
		t.Fatalf("sum = %v, want %v", got, total)
	}
	if got := a.drain(); got != total {
		t.Fatalf("drain = %v, want %v", got, total)
	}
	if got := a.sum(); got != 0 {
		t.Fatalf("sum after drain = %v, want 0", got)
	}
	if got := a.drain(); got != 0 {
		t.Fatalf("second drain = %v, want 0", got)
	}
}

// TestLossAccumulatorConcurrentConservation races adders against a
// draining goroutine (-race covers the memory model; the equality check
// covers conservation): drained totals plus the final residual must
// equal the exact sum of everything added.
func TestLossAccumulatorConcurrentConservation(t *testing.T) {
	const (
		adders = 8
		perAdd = 2000
		dr     = 200 // drains interleaved with the adds
	)
	var a lossAccumulator
	a.init(lossShardCount())

	var wg sync.WaitGroup
	drained := make(chan float64, 1)
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		s := 0.0
		for i := 0; ; i++ {
			select {
			case <-stop:
				drained <- s
				return
			default:
				s += a.drain()
				if i%dr == 0 {
					runtime.Gosched()
				}
			}
		}
	}()

	var want int64
	var addWG sync.WaitGroup
	for g := 0; g < adders; g++ {
		addWG.Add(1)
		go func(g int) {
			defer addWG.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perAdd; i++ {
				v := float64(rng.Intn(1000) + 1)
				a.add(v, uint64(g*perAdd+i))
			}
		}(g)
	}
	// Recompute the exact expected total deterministically from the same
	// seeds (the adders race each other, but their values don't).
	for g := 0; g < adders; g++ {
		rng := rand.New(rand.NewSource(int64(g)))
		for i := 0; i < perAdd; i++ {
			want += int64(rng.Intn(1000) + 1)
		}
	}
	addWG.Wait()
	close(stop)
	wg.Wait()

	got := <-drained + a.sum()
	if got != float64(want) {
		t.Fatalf("conservation violated: drained+residual = %v, want %v (diff %v)", got, want, got-float64(want))
	}
}

// TestControllerLossConservation drives monitored executions (each of
// which drains the shards into the long-lived total) concurrently with
// Stats readers and a Restore, then checks the controller-level ledger:
// mean loss times monitored count must reproduce the exact sum fed in.
// noopPolicy never adjusts the level, so every monitored execution's
// approximation triggers and its scripted loss is measured.
type noopPolicy struct{}

func (noopPolicy) Observe(loss, sla float64) Decision { return Decision{} }

func TestControllerLossConservation(t *testing.T) {
	l, err := NewLoop(LoopConfig{
		Name: "l", Model: testLoopModel(t), SLA: 0.05, SampleInterval: 1,
		Policy: noopPolicy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 4
		perW    = 500
	)
	var wg, readerWG sync.WaitGroup
	stop := make(chan struct{})
	readerWG.Add(1)
	go func() { // a concurrent Stats reader exercises sum() during drains
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				l.Stats()
				runtime.Gosched()
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			q := &seqQoS{losses: []float64{1, 2, 3, 4, 5}}
			for i := 0; i < perW; i++ {
				e, err := l.Begin(q)
				if err != nil {
					t.Error(err)
					return
				}
				i := 0
				for ; i < 3200; i++ {
					if !e.Continue(i) {
						break
					}
				}
				e.Finish(i)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()

	_, monitored, mean := l.Stats()
	if monitored != workers*perW {
		t.Fatalf("monitored = %d, want %d", monitored, workers*perW)
	}
	// Each worker's qos cycles 1..5, so each contributes perW observations
	// summing to perW/5 * 15.
	want := float64(workers * (perW / 5) * 15)
	if got := mean * float64(monitored); got != want {
		t.Fatalf("loss ledger: mean*monitored = %v, want exactly %v", got, want)
	}
}

package core

import (
	"errors"
	"fmt"
)

// Setting is one candidate configuration of one approximated unit during
// the combination search of §3.4.1 — e.g. "exp uses version exp(3)" or
// "main loop terminates at M=2N". PredLoss and Speedup come from the
// unit's local (isolated) calibration model.
type Setting struct {
	// Unit is the index of the unit this setting belongs to.
	Unit int
	// Label names the setting for reports, e.g. "exp(cb)" or "M=2N".
	Label string
	// PredLoss is the local model's predicted fractional QoS loss.
	PredLoss float64
	// Speedup is the local model's predicted work reduction factor
	// (precise work / approximate work) for the unit in isolation.
	Speedup float64
	// WorkShare is the fraction of total application work attributable
	// to this unit (used by the additive estimate); zero means equal
	// shares.
	WorkShare float64
}

// ComboEval measures one combination of settings (one per unit) on the
// training inputs and returns the observed application QoS loss and
// overall speedup. The paper's combination search uses measured values
// because local models may not compose linearly.
type ComboEval func(combo []Setting) (loss, speedup float64, err error)

// SearchResult is the outcome of CombineSearch.
type SearchResult struct {
	// Best is the winning combination (one Setting per unit), nil when no
	// combination met the SLA.
	Best []Setting
	// Loss and Speedup are the evaluator's measurements of Best.
	Loss    float64
	Speedup float64
	// Evaluated is the number of combinations measured.
	Evaluated int
}

// ErrNoViableCombo is returned when no combination satisfies the SLA;
// the application then runs precisely.
var ErrNoViableCombo = errors.New("core: no combination satisfies the application SLA")

// CombineSearch performs the exhaustive search-space exploration of
// §3.4.1: every element of the cross product of per-unit candidate
// settings is evaluated with eval, and the combination with the highest
// measured speedup whose measured application QoS loss satisfies sla is
// returned. This is how the paper's blackscholes run refined the local
// choice exp(cb)+log(2) into the final exp(cb)+log(4).
//
// candidates[i] lists the options for unit i and must be non-empty; a
// "use the precise version" option should be included explicitly when
// falling back is acceptable. The search is exponential in the number of
// units, as in the paper; callers keep candidate lists short.
func CombineSearch(candidates [][]Setting, sla float64, eval ComboEval) (SearchResult, error) {
	if len(candidates) == 0 {
		return SearchResult{}, errors.New("core: no units to search")
	}
	for i, c := range candidates {
		if len(c) == 0 {
			return SearchResult{}, fmt.Errorf("core: unit %d has no candidate settings", i)
		}
	}
	if eval == nil {
		eval = AdditiveEstimate
	}
	res := SearchResult{Loss: 0, Speedup: 1}
	combo := make([]Setting, len(candidates))
	found := false
	var walk func(i int) error
	walk = func(i int) error {
		if i == len(candidates) {
			loss, speedup, err := eval(append([]Setting(nil), combo...))
			if err != nil {
				return err
			}
			res.Evaluated++
			if loss <= sla && (!found || speedup > res.Speedup) {
				found = true
				res.Best = append([]Setting(nil), combo...)
				res.Loss, res.Speedup = loss, speedup
			}
			return nil
		}
		for _, s := range candidates[i] {
			combo[i] = s
			if err := walk(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(0); err != nil {
		return SearchResult{}, err
	}
	if !found {
		return res, ErrNoViableCombo
	}
	return res, nil
}

// AdditiveEstimate is the evaluator used when measurements are
// unavailable: it assumes the approximations are independent and additive
// (the initial assumption of §3.4.2) — losses add, and work shrinks per
// unit weighted by WorkShare (equal shares when unset).
func AdditiveEstimate(combo []Setting) (loss, speedup float64, err error) {
	if len(combo) == 0 {
		return 0, 1, nil
	}
	totalShare := 0.0
	for _, s := range combo {
		totalShare += s.WorkShare
	}
	work := 0.0
	for _, s := range combo {
		loss += s.PredLoss
		share := s.WorkShare
		if totalShare == 0 {
			share = 1 / float64(len(combo))
		} else {
			share /= totalShare
		}
		sp := s.Speedup
		if sp <= 0 {
			sp = 1
		}
		work += share / sp
	}
	if work <= 0 {
		return loss, 1, nil
	}
	return loss, 1 / work, nil
}

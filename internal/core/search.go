package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Setting is one candidate configuration of one approximated unit during
// the combination search of §3.4.1 — e.g. "exp uses version exp(3)" or
// "main loop terminates at M=2N". PredLoss and Speedup come from the
// unit's local (isolated) calibration model.
type Setting struct {
	// Unit is the index of the unit this setting belongs to.
	Unit int
	// Label names the setting for reports, e.g. "exp(cb)" or "M=2N".
	Label string
	// PredLoss is the local model's predicted fractional QoS loss.
	PredLoss float64
	// Speedup is the local model's predicted work reduction factor
	// (precise work / approximate work) for the unit in isolation.
	Speedup float64
	// WorkShare is the fraction of total application work attributable
	// to this unit (used by the additive estimate); zero means equal
	// shares.
	WorkShare float64
}

// ComboEval measures one combination of settings (one per unit) on the
// training inputs and returns the observed application QoS loss and
// overall speedup. The paper's combination search uses measured values
// because local models may not compose linearly.
type ComboEval func(combo []Setting) (loss, speedup float64, err error)

// SearchResult is the outcome of CombineSearch.
type SearchResult struct {
	// Best is the winning combination (one Setting per unit), nil when no
	// combination met the SLA.
	Best []Setting
	// Loss and Speedup are the evaluator's measurements of Best.
	Loss    float64
	Speedup float64
	// Evaluated is the number of combinations measured.
	Evaluated int
}

// ErrNoViableCombo is returned when no combination satisfies the SLA;
// the application then runs precisely.
var ErrNoViableCombo = errors.New("core: no combination satisfies the application SLA")

// SearchOptions tunes CombineSearchOpt. The zero value reproduces the
// classic serial behavior (with pruning, which never changes the result).
type SearchOptions struct {
	// Workers is the number of goroutines fanned out over the unit-0
	// candidate axis; values <= 1 keep the walk fully serial. When
	// Workers > 1 and a measuring evaluator is supplied, it is called
	// concurrently and must be safe for concurrent use. The result is
	// deterministic either way: branch results are merged in candidate
	// order with the same tie-breaking as the serial walk.
	Workers int
	// DisablePruning turns off the branch-and-bound cut that is otherwise
	// applied when the additive estimate is in use (eval == nil). Only
	// useful for measuring the pruning win.
	DisablePruning bool
}

// pruneSlack guards the branch-and-bound cut against float summation
// order: a subtree is pruned only when its loss lower bound exceeds the
// SLA by more than this, so a combination whose evaluated loss lands
// within an ulp of the SLA is never cut.
const pruneSlack = 1e-9

// comboWalker is one serial walker over (a branch of) the combination
// space; parallel search gives each branch its own walker, so there is no
// shared mutable state between goroutines.
type comboWalker struct {
	candidates [][]Setting
	sla        float64
	eval       ComboEval
	minFrom    []float64 // nil disables pruning; else suffix-min loss sums
	combo      []Setting
	res        SearchResult
	found      bool
}

// walk explores depths i..len(candidates) with combo[0..i-1] fixed and
// acc the additive loss of that prefix (accumulated in combo order, so it
// matches AdditiveEstimate's partial sums bit-for-bit).
func (w *comboWalker) walk(i int, acc float64) error {
	if i == len(w.candidates) {
		loss, speedup, err := w.eval(append([]Setting(nil), w.combo...))
		if err != nil {
			return err
		}
		w.res.Evaluated++
		if loss <= w.sla && (!w.found || speedup > w.res.Speedup) {
			w.found = true
			w.res.Best = append([]Setting(nil), w.combo...)
			w.res.Loss, w.res.Speedup = loss, speedup
		}
		return nil
	}
	for _, s := range w.candidates[i] {
		next := acc + s.PredLoss
		if w.minFrom != nil && next+w.minFrom[i+1] > w.sla+pruneSlack {
			// Even the lowest-loss completion of this prefix misses the
			// SLA; no combination below here can be viable.
			continue
		}
		w.combo[i] = s
		if err := w.walk(i+1, next); err != nil {
			return err
		}
	}
	return nil
}

// CombineSearch performs the exhaustive search-space exploration of
// §3.4.1: every element of the cross product of per-unit candidate
// settings is evaluated with eval, and the combination with the highest
// measured speedup whose measured application QoS loss satisfies sla is
// returned. This is how the paper's blackscholes run refined the local
// choice exp(cb)+log(2) into the final exp(cb)+log(4).
//
// candidates[i] lists the options for unit i and must be non-empty; a
// "use the precise version" option should be included explicitly when
// falling back is acceptable. The search is exponential in the number of
// units, as in the paper; callers keep candidate lists short, or use
// CombineSearchOpt to fan the walk out over workers.
func CombineSearch(candidates [][]Setting, sla float64, eval ComboEval) (SearchResult, error) {
	return CombineSearchOpt(candidates, sla, eval, SearchOptions{})
}

// CombineSearchOpt is CombineSearch with explicit tuning. When eval is
// nil the additive estimate is used and the walk applies branch-and-bound
// pruning on the additive loss lower bound (predicted losses only add, so
// once a prefix's loss plus the minimal completion exceeds the SLA the
// whole subtree is unviable); pruned combinations are not counted in
// Evaluated. Opt.Workers > 1 splits the walk across the unit-0 candidate
// axis; the merged result (Best, Loss, Speedup, Evaluated, and any error)
// is identical to the serial walk's.
func CombineSearchOpt(candidates [][]Setting, sla float64, eval ComboEval, opt SearchOptions) (SearchResult, error) {
	if len(candidates) == 0 {
		return SearchResult{}, errors.New("core: no units to search")
	}
	for i, c := range candidates {
		if len(c) == 0 {
			return SearchResult{}, fmt.Errorf("core: unit %d has no candidate settings", i)
		}
	}
	// The additive lower bound is only a true lower bound for the
	// additive estimate itself; a measuring evaluator may compose
	// non-linearly, so pruning is off whenever one is supplied.
	var minFrom []float64
	if eval == nil && !opt.DisablePruning {
		minFrom = make([]float64, len(candidates)+1)
		for i := len(candidates) - 1; i >= 0; i-- {
			m := math.Inf(1)
			for _, s := range candidates[i] {
				m = math.Min(m, s.PredLoss)
			}
			minFrom[i] = minFrom[i+1] + m
		}
	}
	if eval == nil {
		eval = AdditiveEstimate
	}
	newWalker := func() *comboWalker {
		return &comboWalker{
			candidates: candidates, sla: sla, eval: eval, minFrom: minFrom,
			combo: make([]Setting, len(candidates)),
			res:   SearchResult{Loss: 0, Speedup: 1},
		}
	}

	branches := len(candidates[0])
	workers := opt.Workers
	if workers > branches {
		workers = branches
	}
	if workers <= 1 {
		w := newWalker()
		if err := w.walk(0, 0); err != nil {
			return SearchResult{}, err
		}
		if !w.found {
			return w.res, ErrNoViableCombo
		}
		return w.res, nil
	}

	// Fan out over the unit-0 candidates; each branch is an independent
	// serial walk, merged afterwards in branch order so ties break
	// exactly as the serial (lexicographic) walk breaks them.
	type branchOut struct {
		res   SearchResult
		found bool
		err   error
	}
	outs := make([]branchOut, branches)
	var nextBranch atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				b := int(nextBranch.Add(1)) - 1
				if b >= branches {
					return
				}
				w := newWalker()
				s := candidates[0][b]
				acc := s.PredLoss
				if w.minFrom != nil && acc+w.minFrom[1] > sla+pruneSlack {
					continue // whole branch pruned; outs[b] stays zero
				}
				w.combo[0] = s
				err := w.walk(1, acc)
				outs[b] = branchOut{res: w.res, found: w.found, err: err}
			}
		}()
	}
	wg.Wait()

	merged := SearchResult{Loss: 0, Speedup: 1}
	found := false
	for _, o := range outs {
		if o.err != nil {
			// The lowest-index branch's error is the one the serial walk
			// would have hit first.
			return SearchResult{}, o.err
		}
		merged.Evaluated += o.res.Evaluated
		if o.found && (!found || o.res.Speedup > merged.Speedup) {
			found = true
			merged.Best = o.res.Best
			merged.Loss, merged.Speedup = o.res.Loss, o.res.Speedup
		}
	}
	if !found {
		return merged, ErrNoViableCombo
	}
	return merged, nil
}

// AdditiveEstimate is the evaluator used when measurements are
// unavailable: it assumes the approximations are independent and additive
// (the initial assumption of §3.4.2) — losses add, and work shrinks per
// unit weighted by WorkShare (equal shares when unset).
func AdditiveEstimate(combo []Setting) (loss, speedup float64, err error) {
	if len(combo) == 0 {
		return 0, 1, nil
	}
	totalShare := 0.0
	for _, s := range combo {
		totalShare += s.WorkShare
	}
	work := 0.0
	for _, s := range combo {
		loss += s.PredLoss
		share := s.WorkShare
		if totalShare == 0 {
			share = 1 / float64(len(combo))
		} else {
			share /= totalShare
		}
		sp := s.Speedup
		if sp <= 0 {
			sp = 1
		}
		work += share / sp
	}
	if work <= 0 {
		return loss, 1, nil
	}
	return loss, 1 / work, nil
}

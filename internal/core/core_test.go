package core

import (
	"testing"
)

func TestDefaultPolicy(t *testing.T) {
	p := DefaultPolicy{}
	cases := []struct {
		loss, sla float64
		want      Action
	}{
		{0.05, 0.02, ActIncrease},  // low QoS
		{0.001, 0.02, ActDecrease}, // high QoS
		{0.019, 0.02, ActNone},     // within band [0.9*SLA, SLA]
		{0.02, 0.02, ActNone},      // exactly at SLA
		{0.0185, 0.02, ActNone},    // just above 0.9*SLA
	}
	for _, c := range cases {
		if got := p.Observe(c.loss, c.sla); got.Action != c.want {
			t.Errorf("Observe(%v, %v) = %v, want %v", c.loss, c.sla, got.Action, c.want)
		}
	}
}

func TestDefaultPolicyCustomHighFraction(t *testing.T) {
	p := DefaultPolicy{HighFraction: 0.5}
	if got := p.Observe(0.015, 0.02); got.Action != ActNone {
		t.Errorf("loss 0.015 with half-band = %v, want none", got.Action)
	}
	if got := p.Observe(0.005, 0.02); got.Action != ActDecrease {
		t.Errorf("loss 0.005 with half-band = %v, want decrease", got.Action)
	}
}

func TestActionString(t *testing.T) {
	if ActNone.String() != "none" || ActIncrease.String() != "increase-accuracy" ||
		ActDecrease.String() != "decrease-accuracy" {
		t.Error("Action strings wrong")
	}
	if Action(42).String() == "" {
		t.Error("unknown action must still stringify")
	}
}

// The Figure 9 policy: a window of 100 consecutive monitored queries
// aggregated into one decision.
func TestWindowedPolicyAggregates(t *testing.T) {
	p := &WindowedPolicy{Window: 100, BaseInterval: 1000}
	sla := 0.01 // "99% of queries identical"
	// First 99 observations keep the window open and force interval 1.
	for i := 0; i < 99; i++ {
		loss := 0.0
		if i < 5 {
			loss = 1 // five low-QoS queries out of the window
		}
		d := p.Observe(loss, sla)
		if d.Action != ActNone {
			t.Fatalf("observation %d acted early: %v", i, d.Action)
		}
		if d.NewSampleInterval != 1 {
			t.Fatalf("observation %d interval = %d, want 1", i, d.NewSampleInterval)
		}
	}
	// 100th completes the window: aggregate loss 5/100 = 0.05 > SLA.
	d := p.Observe(0, sla)
	if d.Action != ActIncrease {
		t.Fatalf("window decision = %v, want increase", d.Action)
	}
	if d.NewSampleInterval != 1000 {
		t.Fatalf("restored interval = %d, want 1000", d.NewSampleInterval)
	}
}

func TestWindowedPolicyGoodWindowDecreases(t *testing.T) {
	p := &WindowedPolicy{Window: 10, BaseInterval: 50}
	sla := 0.5
	var d Decision
	for i := 0; i < 10; i++ {
		d = p.Observe(0, sla) // all queries perfect
	}
	if d.Action != ActDecrease {
		t.Fatalf("perfect window decision = %v, want decrease", d.Action)
	}
}

func TestWindowedPolicyInBandWindowHolds(t *testing.T) {
	p := &WindowedPolicy{Window: 10, BaseInterval: 50}
	sla := 0.5
	var d Decision
	for i := 0; i < 10; i++ {
		loss := 0.0
		if i < 5 {
			loss = 1 // aggregate 0.5 == SLA: inside [0.45, 0.5]
		}
		d = p.Observe(loss, sla)
	}
	if d.Action != ActNone {
		t.Fatalf("in-band window decision = %v, want none", d.Action)
	}
}

func TestWindowedPolicyReopens(t *testing.T) {
	p := &WindowedPolicy{Window: 3, BaseInterval: 9}
	for i := 0; i < 3; i++ {
		p.Observe(1, 0.01)
	}
	// New window starts fresh.
	if p.AggregateLoss() != 0 {
		t.Fatalf("aggregate after close = %v, want 0", p.AggregateLoss())
	}
	p.Observe(0, 0.01)
	p.Observe(1, 0.01)
	if got := p.AggregateLoss(); got != 0.5 {
		t.Fatalf("aggregate mid-window = %v, want 0.5", got)
	}
}

func TestWindowedPolicyDefaultWindow(t *testing.T) {
	p := &WindowedPolicy{BaseInterval: 10}
	d := p.Observe(0, 0.01)
	if p.Window != 100 {
		t.Fatalf("default window = %d, want 100", p.Window)
	}
	if d.NewSampleInterval != 1 {
		t.Fatalf("interval = %d, want 1", d.NewSampleInterval)
	}
}

package core

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// randomCandidates builds a reproducible random search space: units x per
// candidate settings with losses around the interesting region of sla.
func randomCandidates(rng *rand.Rand, units, per int, sla float64) [][]Setting {
	cands := make([][]Setting, units)
	for u := range cands {
		cands[u] = make([]Setting, per)
		for v := range cands[u] {
			cands[u][v] = Setting{
				Unit:     u,
				Label:    fmt.Sprintf("u%dv%d", u, v),
				PredLoss: rng.Float64() * 2 * sla / float64(units),
				Speedup:  1 + rng.Float64()*3,
			}
			if rng.Intn(4) == 0 {
				cands[u][v].WorkShare = rng.Float64()
			}
		}
	}
	return cands
}

// The parallel fan-out and the branch-and-bound cut must both be
// invisible: identical Best/Loss/Speedup (and, without pruning, identical
// Evaluated) to the plain serial walk, across randomized spaces.
func TestCombineSearchOptMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	evalMeasured := func(combo []Setting) (float64, float64, error) {
		loss, speed := 0.0, 0.0
		for _, s := range combo {
			loss += s.PredLoss
			speed += 1 / s.Speedup
		}
		return loss, float64(len(combo)) / speed, nil
	}
	for trial := 0; trial < 30; trial++ {
		units := 2 + rng.Intn(4)
		per := 1 + rng.Intn(5)
		sla := 0.01 + rng.Float64()*0.03
		cands := randomCandidates(rng, units, per, sla)

		serial, serialErr := CombineSearchOpt(cands, sla, nil, SearchOptions{DisablePruning: true})
		for _, opt := range []SearchOptions{
			{},                                 // serial + pruning
			{Workers: 2},                       // parallel + pruning
			{Workers: 8, DisablePruning: true}, // parallel, exhaustive
			{Workers: per + 3},                 // more workers than branches
		} {
			got, err := CombineSearchOpt(cands, sla, nil, opt)
			if !errors.Is(err, serialErr) && err != serialErr {
				t.Fatalf("trial %d opt %+v: err = %v, serial err = %v", trial, opt, err, serialErr)
			}
			if !reflect.DeepEqual(got.Best, serial.Best) ||
				got.Loss != serial.Loss || got.Speedup != serial.Speedup {
				t.Fatalf("trial %d opt %+v: result %+v != serial %+v", trial, opt, got, serial)
			}
			if opt.DisablePruning && got.Evaluated != serial.Evaluated {
				t.Fatalf("trial %d opt %+v: evaluated %d != serial %d",
					trial, opt, got.Evaluated, serial.Evaluated)
			}
			if got.Evaluated > serial.Evaluated {
				t.Fatalf("trial %d opt %+v: pruned walk evaluated MORE (%d > %d)",
					trial, opt, got.Evaluated, serial.Evaluated)
			}
		}
		// A measuring evaluator disables pruning but still parallelizes.
		ms, msErr := CombineSearch(cands, sla, evalMeasured)
		mp, mpErr := CombineSearchOpt(cands, sla, evalMeasured, SearchOptions{Workers: 4})
		if (msErr == nil) != (mpErr == nil) || !reflect.DeepEqual(ms, mp) {
			t.Fatalf("trial %d measured: parallel %+v (%v) != serial %+v (%v)",
				trial, mp, mpErr, ms, msErr)
		}
	}
}

func TestCombineSearchPruningReducesEvaluated(t *testing.T) {
	// Unit 0 has one viable and three hopeless settings: pruning should
	// cut three of the four top-level branches without descending.
	hopeless := func(u, v int) Setting {
		return Setting{Unit: u, Label: fmt.Sprintf("bad%d_%d", u, v), PredLoss: 0.9, Speedup: 5}
	}
	cands := [][]Setting{
		{{Unit: 0, Label: "ok", PredLoss: 0.001, Speedup: 2},
			hopeless(0, 1), hopeless(0, 2), hopeless(0, 3)},
		{{Unit: 1, Label: "a", PredLoss: 0.002, Speedup: 1.5},
			{Unit: 1, Label: "b", PredLoss: 0.004, Speedup: 1.8}},
		{{Unit: 2, Label: "c", PredLoss: 0.001, Speedup: 1.2},
			{Unit: 2, Label: "d", PredLoss: 0.003, Speedup: 1.4}},
	}
	const sla = 0.02
	exhaustive, err := CombineSearchOpt(cands, sla, nil, SearchOptions{DisablePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if exhaustive.Evaluated != 16 {
		t.Fatalf("exhaustive evaluated %d, want 16", exhaustive.Evaluated)
	}
	pruned, err := CombineSearch(cands, sla, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Evaluated != 4 {
		t.Errorf("pruned walk evaluated %d combos, want 4 (one viable unit-0 branch)", pruned.Evaluated)
	}
	if !reflect.DeepEqual(pruned.Best, exhaustive.Best) ||
		pruned.Loss != exhaustive.Loss || pruned.Speedup != exhaustive.Speedup {
		t.Errorf("pruned result %+v differs from exhaustive %+v", pruned, exhaustive)
	}
}

// The serial walk surfaces the first evaluator error in lexicographic
// order; the parallel merge must surface the same one.
func TestCombineSearchParallelErrorDeterministic(t *testing.T) {
	errB := errors.New("branch b failed")
	errC := errors.New("branch c failed")
	cands := [][]Setting{
		{{Unit: 0, Label: "a"}, {Unit: 0, Label: "b"}, {Unit: 0, Label: "c"}},
		{{Unit: 1, Label: "x"}, {Unit: 1, Label: "y"}},
	}
	eval := func(combo []Setting) (float64, float64, error) {
		switch combo[0].Label {
		case "b":
			return 0, 0, errB
		case "c":
			return 0, 0, errC
		}
		return 0.001, 2, nil
	}
	for _, workers := range []int{0, 2, 3} {
		_, err := CombineSearchOpt(cands, 0.01, eval, SearchOptions{Workers: workers})
		if err != errB {
			t.Errorf("workers=%d: err = %v, want errB (first in walk order)", workers, err)
		}
	}
}

package workload

import (
	"math"
	"testing"
)

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestSplitProducesDistinctStreams(t *testing.T) {
	seen := make(map[int64]bool)
	for stream := int64(0); stream < 100; stream++ {
		s := Split(42, stream)
		if seen[s] {
			t.Fatalf("duplicate child seed for stream %d", stream)
		}
		seen[s] = true
	}
	if Split(42, 1) != Split(42, 1) {
		t.Error("Split not deterministic")
	}
	if Split(42, 1) == Split(43, 1) {
		t.Error("different roots should give different children")
	}
}

func TestZipfValidation(t *testing.T) {
	if _, err := NewZipf(1, 1.2, 0); err == nil {
		t.Error("zero range accepted")
	}
	if _, err := NewZipf(1, 1.0, 100); err == nil {
		t.Error("exponent 1.0 accepted")
	}
}

func TestZipfSkew(t *testing.T) {
	z, err := NewZipf(1, 1.5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	counts := make(map[uint64]int)
	for i := 0; i < n; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("value %d out of range", v)
		}
		counts[v]++
	}
	// Head must dominate: rank 0 much more frequent than rank 100.
	if counts[0] < 10*counts[100]+1 {
		t.Errorf("zipf not skewed: c0=%d c100=%d", counts[0], counts[100])
	}
}

func TestUniformFloats(t *testing.T) {
	xs := UniformFloats(3, 1000, -2, 5)
	if len(xs) != 1000 {
		t.Fatalf("len = %d", len(xs))
	}
	for _, x := range xs {
		if x < -2 || x >= 5 {
			t.Fatalf("value %v out of range", x)
		}
	}
	ys := UniformFloats(3, 1000, -2, 5)
	for i := range xs {
		if xs[i] != ys[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestNormalFloats(t *testing.T) {
	xs := NormalFloats(5, 20000, 10, 2)
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if math.Abs(mean-10) > 0.1 {
		t.Errorf("mean = %v, want ~10", mean)
	}
}

func TestLogNormalFloatsPositive(t *testing.T) {
	for _, x := range LogNormalFloats(9, 5000, 0, 0.3) {
		if x <= 0 {
			t.Fatalf("log-normal produced non-positive %v", x)
		}
	}
}

func TestPerm(t *testing.T) {
	p := Perm(11, 50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
	q := Perm(11, 50)
	for i := range p {
		if p[i] != q[i] {
			t.Fatal("Perm not deterministic")
		}
	}
}

func TestOptionsRealistic(t *testing.T) {
	opts := Options(13, 5000)
	if len(opts) != 5000 {
		t.Fatalf("len = %d", len(opts))
	}
	puts := 0
	for _, o := range opts {
		if o.Spot <= 0 || o.Strike <= 0 || o.Vol <= 0 || o.Maturity <= 0 {
			t.Fatalf("invalid option %+v", o)
		}
		ratio := o.Spot / o.Strike
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("extreme spot/strike ratio %v", ratio)
		}
		if o.IsPut {
			puts++
		}
	}
	if puts < 2000 || puts > 3000 {
		t.Errorf("puts = %d of 5000, want roughly half", puts)
	}
}

func TestSignalRange(t *testing.T) {
	s := Signal(17, 256)
	if len(s) != 256 {
		t.Fatalf("len = %d", len(s))
	}
	for _, v := range s {
		if v < 0 || v >= 1 {
			t.Fatalf("sample %v outside [0,1)", v)
		}
	}
}

// Package workload provides the deterministic input generators shared by
// the experiment substrates: a Zipf sampler for search corpora and query
// logs, uniform/normal scalar streams for signals and option portfolios,
// and seed-splitting so every experiment is reproducible from a single
// root seed.
package workload

import (
	"errors"
	"math"
	"math/rand"
)

// NewRand returns a deterministic PRNG for the given seed.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Split derives a child seed from a root seed and a stream index, so
// independent generators can be created from one experiment seed without
// correlation.
func Split(seed int64, stream int64) int64 {
	// SplitMix64-style mixing.
	z := uint64(seed) + uint64(stream)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// Zipf draws integers in [0, n) with P(k) proportional to 1/(k+1)^s,
// which models both term popularity in a document corpus and query
// frequency in a production log.
type Zipf struct {
	rng *rand.Rand
	z   *rand.Zipf
}

// NewZipf creates a Zipf sampler over [0, n) with exponent s > 1.
func NewZipf(seed int64, s float64, n uint64) (*Zipf, error) {
	if n == 0 {
		return nil, errors.New("workload: zipf needs a positive range")
	}
	if s <= 1 {
		return nil, errors.New("workload: zipf exponent must be > 1")
	}
	rng := NewRand(seed)
	z := rand.NewZipf(rng, s, 1, n-1)
	if z == nil {
		return nil, errors.New("workload: invalid zipf parameters")
	}
	return &Zipf{rng: rng, z: z}, nil
}

// Next draws the next value.
func (z *Zipf) Next() uint64 { return z.z.Uint64() }

// UniformFloats returns n values uniform in [lo, hi).
func UniformFloats(seed int64, n int, lo, hi float64) []float64 {
	rng := NewRand(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = lo + (hi-lo)*rng.Float64()
	}
	return xs
}

// NormalFloats returns n values drawn from N(mean, stddev).
func NormalFloats(seed int64, n int, mean, stddev float64) []float64 {
	rng := NewRand(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = mean + stddev*rng.NormFloat64()
	}
	return xs
}

// LogNormalFloats returns n values whose logarithm is N(mu, sigma); used
// for option spot/strike ratios, which cluster around 1.
func LogNormalFloats(seed int64, n int, mu, sigma float64) []float64 {
	rng := NewRand(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Exp(mu + sigma*rng.NormFloat64())
	}
	return xs
}

// Perm returns a deterministic random permutation of [0, n).
func Perm(seed int64, n int) []int {
	return NewRand(seed).Perm(n)
}

// Option is one European option for the blackscholes workload.
type Option struct {
	Spot     float64 // current underlying price
	Strike   float64
	Rate     float64 // risk-free rate
	Vol      float64 // volatility
	Maturity float64 // years
	IsPut    bool
}

// Options generates a deterministic option portfolio mirroring the PARSEC
// blackscholes input distribution: spot/strike ratios near 1 (so the log
// arguments fall in the Taylor-friendly region the paper calibrates,
// Figure 8(b)) and maturities/vols in realistic ranges.
func Options(seed int64, n int) []Option {
	rng := NewRand(seed)
	opts := make([]Option, n)
	for i := range opts {
		strike := 20 + 80*rng.Float64()
		ratio := math.Exp(0.15 * rng.NormFloat64()) // spot/strike around 1
		opts[i] = Option{
			Spot:     strike * ratio,
			Strike:   strike,
			Rate:     0.01 + 0.09*rng.Float64(),
			Vol:      0.10 + 0.50*rng.Float64(),
			Maturity: 0.25 + 2.75*rng.Float64(),
			IsPut:    rng.Intn(2) == 0,
		}
	}
	return opts
}

// Signal generates a deterministic random signal of n samples with real
// values in [0, 1), matching the paper's DFT input data-sets ("each input
// sample has a random real value from 0 to 1").
func Signal(seed int64, n int) []float64 {
	return UniformFloats(seed, n, 0, 1)
}

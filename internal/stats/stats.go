// Package stats provides the small set of statistical primitives used by
// the Green calibration, modeling, and experiment-reporting code: summary
// statistics, percentiles, confidence intervals, least-squares fitting, and
// fixed-width histograms.
//
// All functions operate on float64 slices and never modify their inputs
// unless documented otherwise.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot produce a result from an
// empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Variance returns the unbiased sample variance of xs.
// It returns 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty sample")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty sample")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. The input is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range [0,100]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) {
	return Percentile(xs, 50)
}

// Summary bundles the common descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	P50    float64
	P95    float64
	P99    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	p50, _ := Percentile(xs, 50)
	p95, _ := Percentile(xs, 95)
	p99, _ := Percentile(xs, 99)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		P50:    p50,
		P95:    p95,
		P99:    p99,
	}, nil
}

// ConfidenceInterval95 returns the half-width of the 95% confidence
// interval for the mean of xs under a normal approximation
// (1.96 * stddev / sqrt(n)). It returns 0 when len(xs) < 2.
func ConfidenceInterval95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(n))
}

// LinearFit fits y = a + b*x by ordinary least squares and returns the
// intercept a, slope b, and the coefficient of determination r².
// It returns an error when fewer than two points are given or when all xs
// are identical.
func LinearFit(xs, ys []float64) (a, b, r2 float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, 0, errors.New("stats: mismatched sample lengths")
	}
	if len(xs) < 2 {
		return 0, 0, 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, 0, 0, errors.New("stats: degenerate fit (all x identical)")
	}
	b = sxy / sxx
	a = my - b*mx
	if syy == 0 {
		r2 = 1
	} else {
		r2 = sxy * sxy / (sxx * syy)
	}
	return a, b, r2, nil
}

// Histogram is a fixed-width histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	// Under and Over count observations falling outside [Lo, Hi).
	Under, Over int
}

// NewHistogram creates a histogram with the given bounds and bin count.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, errors.New("stats: histogram needs at least one bin")
	}
	if !(lo < hi) {
		return nil, errors.New("stats: histogram requires lo < hi")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if idx == len(h.Counts) { // guard FP rounding at the upper edge
			idx--
		}
		h.Counts[idx]++
	}
}

// Total returns the number of observations recorded, including out-of-range
// ones.
func (h *Histogram) Total() int {
	n := h.Under + h.Over
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// BinCenter returns the center x value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// GeometricMean returns the geometric mean of xs; all values must be
// positive.
func GeometricMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sumLog := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: geometric mean requires positive values")
		}
		sumLog += math.Log(x)
	}
	return math.Exp(sumLog / float64(len(xs))), nil
}

package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSum(t *testing.T) {
	if got := Sum([]float64{1.5, 2.5, -1}); !almostEqual(got, 3, 1e-12) {
		t.Errorf("Sum = %v, want 3", got)
	}
	if got := Sum(nil); got != 0 {
		t.Errorf("Sum(nil) = %v, want 0", got)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance of this classic data set is 32/7.
	want := 32.0 / 7.0
	if got := Variance(xs); !almostEqual(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(want), 1e-12) {
		t.Errorf("StdDev = %v, want %v", got, math.Sqrt(want))
	}
	if got := Variance([]float64{42}); got != 0 {
		t.Errorf("Variance of singleton = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v, want -1", got)
	}
	if got := Max(xs); got != 5 {
		t.Errorf("Max = %v, want 5", got)
	}
}

func TestMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Min(nil) did not panic")
		}
	}()
	Min(nil)
}

func TestMaxPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Max(nil) did not panic")
		}
	}()
	Max(nil)
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", c.p, err)
		}
		if !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Errorf("empty percentile err = %v, want ErrEmpty", err)
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Error("negative percentile should error")
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Error("percentile > 100 should error")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Percentile mutated input: %v", xs)
	}
}

func TestMedian(t *testing.T) {
	got, err := Median([]float64{9, 1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Errorf("Median = %v, want 5", got)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Errorf("Summarize(nil) err = %v, want ErrEmpty", err)
	}
}

func TestConfidenceInterval95(t *testing.T) {
	if got := ConfidenceInterval95([]float64{1}); got != 0 {
		t.Errorf("CI of singleton = %v, want 0", got)
	}
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i % 2) // alternating 0/1, stddev ~0.5025
	}
	ci := ConfidenceInterval95(xs)
	want := 1.96 * StdDev(xs) / 10
	if !almostEqual(ci, want, 1e-12) {
		t.Errorf("CI = %v, want %v", ci, want)
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 1 + 2x
	a, b, r2, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(a, 1, 1e-9) || !almostEqual(b, 2, 1e-9) || !almostEqual(r2, 1, 1e-9) {
		t.Errorf("fit = (%v, %v, r2=%v), want (1, 2, 1)", a, b, r2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, _, _, err := LinearFit([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should error")
	}
	if _, _, _, err := LinearFit([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Error("identical x should error")
	}
}

func TestLinearFitConstantY(t *testing.T) {
	a, b, r2, err := LinearFit([]float64{0, 1, 2}, []float64{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(a, 4, 1e-9) || !almostEqual(b, 0, 1e-9) || r2 != 1 {
		t.Errorf("constant fit = (%v, %v, %v)", a, b, r2)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 11} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("under/over = %d/%d, want 1/2", h.Under, h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Errorf("bin0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Errorf("bin1 = %d, want 1", h.Counts[1])
	}
	if h.Counts[4] != 1 { // 9.99
		t.Errorf("bin4 = %d, want 1", h.Counts[4])
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
	if got := h.BinCenter(0); !almostEqual(got, 1, 1e-12) {
		t.Errorf("BinCenter(0) = %v, want 1", got)
	}
}

func TestHistogramConstructorErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero bins should error")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("lo == hi should error")
	}
}

func TestGeometricMean(t *testing.T) {
	got, err := GeometricMean([]float64{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 4, 1e-9) {
		t.Errorf("GeometricMean = %v, want 4", got)
	}
	if _, err := GeometricMean([]float64{1, 0}); err == nil {
		t.Error("non-positive input should error")
	}
	if _, err := GeometricMean(nil); err != ErrEmpty {
		t.Errorf("empty err = %v, want ErrEmpty", err)
	}
}

// Property: mean is bounded by min and max.
func TestMeanBoundedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-6 && m <= Max(xs)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: percentile is monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v, err := Percentile(xs, p)
			if err != nil {
				t.Fatal(err)
			}
			if v < prev-1e-9 {
				t.Fatalf("percentile not monotone at p=%v: %v < %v", p, v, prev)
			}
			prev = v
		}
	}
}

// Property: variance is non-negative and zero for constant samples.
func TestVarianceProperty(t *testing.T) {
	f := func(x float64, n uint8) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
			return true
		}
		xs := make([]float64, int(n%16)+2)
		for i := range xs {
			xs[i] = x
		}
		return almostEqual(Variance(xs), 0, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramFuzzAllAccounted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h, err := NewHistogram(-3, 3, 12)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10000
	for i := 0; i < n; i++ {
		h.Add(rng.NormFloat64())
	}
	if h.Total() != n {
		t.Errorf("Total = %d, want %d", h.Total(), n)
	}
}

package energy_test

import (
	"fmt"

	"green/internal/energy"
)

// Example shows how experiments convert work units into simulated time
// and energy, and why approximation improves both with different ratios.
func Example() {
	model := &energy.CostModel{
		IdleWatts:    300,                             // server idle draw
		FixedSeconds: 0.002,                           // per-query overhead
		FixedJoules:  0.2,                             // per-query dynamic energy
		UnitSeconds:  map[string]float64{"doc": 5e-6}, // scoring one document
		UnitJoules:   map[string]float64{"doc": 8e-4}, //
	}
	precise := energy.NewAccount()
	precise.AddOp()
	precise.Add("doc", 4000) // the full matching-document scan

	approx := energy.NewAccount()
	approx.AddOp()
	approx.Add("doc", 1000) // early-terminated at M

	p := model.Evaluate(precise)
	a := model.Evaluate(approx)
	fmt.Printf("time ratio %.2f, energy ratio %.2f\n",
		a.Seconds/p.Seconds, a.Joules/p.Joules)
	// Output: time ratio 0.32, energy ratio 0.31
}

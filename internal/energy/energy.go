// Package energy simulates the whole-system energy instrumentation the
// paper used for its evaluation (a device sampling current and voltage on
// the main power cable once per second).
//
// Because this reproduction runs on simulated substrates rather than the
// authors' testbed, executions are measured in abstract *work units*
// (documents scored, rays traced, GA generations, polynomial terms
// evaluated, ...). A CostModel converts accumulated work units into
//
//   - simulated execution time:  T = FixedSeconds·ops + Σ units(c)·UnitSeconds(c)
//   - simulated energy:          E = IdleWatts·T + FixedJoules·ops
//   - Σ units(c)·UnitJoules(c)
//
// which reproduces exactly the relation the paper's measurements express:
// a static (idle) power draw integrated over the run plus a dynamic part
// proportional to the work performed. Approximation reduces work units,
// which shrinks both time and energy — with ratios that differ, as in the
// paper, because the fixed per-operation overheads do not shrink.
//
// A Meter additionally emulates the 1-second sampling of the physical
// instrument so tests can demonstrate the paper's claim that the sampling
// period is acceptable for long runs.
package energy

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Account accumulates the work performed by one run (one query, one frame,
// one full experiment — the granularity is the caller's choice).
type Account struct {
	units map[string]float64
	ops   float64
}

// NewAccount returns an empty account.
func NewAccount() *Account {
	return &Account{units: make(map[string]float64)}
}

// Add records n units of work of the given class. Negative n is rejected.
func (a *Account) Add(class string, n float64) {
	if n < 0 {
		panic(fmt.Sprintf("energy: negative work %v for class %q", n, class))
	}
	a.units[class] += n
}

// AddOp records the completion of one top-level operation (e.g. one
// query). Per-op fixed costs in the CostModel are multiplied by the op
// count.
func (a *Account) AddOp() { a.ops++ }

// Ops returns the number of completed top-level operations.
func (a *Account) Ops() float64 { return a.ops }

// Units returns the accumulated units for a class.
func (a *Account) Units(class string) float64 { return a.units[class] }

// Classes returns the work classes recorded, sorted for deterministic
// iteration.
func (a *Account) Classes() []string {
	cs := make([]string, 0, len(a.units))
	for c := range a.units {
		cs = append(cs, c)
	}
	sort.Strings(cs)
	return cs
}

// Merge adds all of b's work into a.
func (a *Account) Merge(b *Account) {
	for c, n := range b.units {
		a.units[c] += n
	}
	a.ops += b.ops
}

// Reset clears the account.
func (a *Account) Reset() {
	a.units = make(map[string]float64)
	a.ops = 0
}

// String renders the account compactly for logs.
func (a *Account) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ops=%.0f", a.ops)
	for _, c := range a.Classes() {
		fmt.Fprintf(&b, " %s=%.0f", c, a.units[c])
	}
	return b.String()
}

// CostModel converts work units into simulated seconds and joules.
type CostModel struct {
	// IdleWatts is the static whole-system power draw, integrated over the
	// simulated run time.
	IdleWatts float64
	// FixedSeconds and FixedJoules are charged once per top-level
	// operation (request parsing, dispatch, I/O...). They are the part of
	// the cost that approximation cannot remove.
	FixedSeconds float64
	FixedJoules  float64
	// UnitSeconds and UnitJoules are the per-work-unit simulated time and
	// dynamic energy for each work class.
	UnitSeconds map[string]float64
	UnitJoules  map[string]float64
}

// Validate reports whether the model is usable.
func (m *CostModel) Validate() error {
	if m.IdleWatts < 0 || m.FixedSeconds < 0 || m.FixedJoules < 0 {
		return errors.New("energy: negative cost-model constants")
	}
	for c, v := range m.UnitSeconds {
		if v < 0 {
			return fmt.Errorf("energy: negative UnitSeconds for %q", c)
		}
	}
	for c, v := range m.UnitJoules {
		if v < 0 {
			return fmt.Errorf("energy: negative UnitJoules for %q", c)
		}
	}
	return nil
}

// Report is the simulated measurement of one run.
type Report struct {
	Seconds float64 // simulated execution time
	Joules  float64 // simulated total system energy
	Ops     float64 // top-level operations completed
}

// Throughput returns operations per simulated second (the paper's QPS for
// search). It returns 0 for a zero-duration run.
func (r Report) Throughput() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return r.Ops / r.Seconds
}

// JoulesPerOp returns energy per operation (the paper's Joules/query).
// It returns 0 when no operations were recorded.
func (r Report) JoulesPerOp() float64 {
	if r.Ops <= 0 {
		return 0
	}
	return r.Joules / r.Ops
}

// Evaluate converts an account into a simulated time/energy report.
func (m *CostModel) Evaluate(a *Account) Report {
	secs := m.FixedSeconds * a.ops
	dyn := m.FixedJoules * a.ops
	for c, n := range a.units {
		secs += n * m.UnitSeconds[c]
		dyn += n * m.UnitJoules[c]
	}
	return Report{
		Seconds: secs,
		Joules:  m.IdleWatts*secs + dyn,
		Ops:     a.ops,
	}
}

// Meter emulates the physical instrumentation: it integrates a power trace
// by sampling it at a fixed period, as the paper's device does at one
// second.
type Meter struct {
	// PeriodSeconds is the sampling period (1.0 in the paper).
	PeriodSeconds float64
}

// SampledJoules integrates the power trace watts(t) over [0, duration] by
// left-endpoint sampling at the meter period, which is how a sampling
// power meter accumulates energy. The final partial interval is included.
func (mt Meter) SampledJoules(watts func(t float64) float64, duration float64) (float64, error) {
	if mt.PeriodSeconds <= 0 {
		return 0, errors.New("energy: meter period must be positive")
	}
	if duration < 0 {
		return 0, errors.New("energy: negative duration")
	}
	total := 0.0
	for t := 0.0; t < duration; t += mt.PeriodSeconds {
		dt := mt.PeriodSeconds
		if t+dt > duration {
			dt = duration - t
		}
		total += watts(t) * dt
	}
	return total, nil
}

// RelativeSamplingError measures how far the sampled energy of a run with
// the given power trace is from the exact integral computed with a much
// finer step. It quantifies the paper's argument that 1-second sampling is
// acceptable when runs are long.
func (mt Meter) RelativeSamplingError(watts func(t float64) float64, duration float64) (float64, error) {
	coarse, err := mt.SampledJoules(watts, duration)
	if err != nil {
		return 0, err
	}
	fine := Meter{PeriodSeconds: mt.PeriodSeconds / 1000}
	exact, err := fine.SampledJoules(watts, duration)
	if err != nil {
		return 0, err
	}
	if exact == 0 {
		return 0, nil
	}
	diff := coarse - exact
	if diff < 0 {
		diff = -diff
	}
	return diff / exact, nil
}

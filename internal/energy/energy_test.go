package energy

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAccountBasics(t *testing.T) {
	a := NewAccount()
	a.Add("doc", 10)
	a.Add("doc", 5)
	a.Add("ray", 2)
	a.AddOp()
	a.AddOp()
	if got := a.Units("doc"); got != 15 {
		t.Errorf("doc units = %v, want 15", got)
	}
	if got := a.Units("ray"); got != 2 {
		t.Errorf("ray units = %v, want 2", got)
	}
	if got := a.Units("missing"); got != 0 {
		t.Errorf("missing units = %v, want 0", got)
	}
	if a.Ops() != 2 {
		t.Errorf("ops = %v, want 2", a.Ops())
	}
	cs := a.Classes()
	if len(cs) != 2 || cs[0] != "doc" || cs[1] != "ray" {
		t.Errorf("classes = %v", cs)
	}
	if s := a.String(); !strings.Contains(s, "ops=2") || !strings.Contains(s, "doc=15") {
		t.Errorf("String = %q", s)
	}
}

func TestAccountNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative work")
		}
	}()
	NewAccount().Add("x", -1)
}

func TestAccountMergeAndReset(t *testing.T) {
	a, b := NewAccount(), NewAccount()
	a.Add("doc", 1)
	a.AddOp()
	b.Add("doc", 2)
	b.Add("ray", 3)
	b.AddOp()
	a.Merge(b)
	if a.Units("doc") != 3 || a.Units("ray") != 3 || a.Ops() != 2 {
		t.Errorf("after merge: %v", a)
	}
	a.Reset()
	if a.Units("doc") != 0 || a.Ops() != 0 {
		t.Errorf("after reset: %v", a)
	}
}

func testModel() *CostModel {
	return &CostModel{
		IdleWatts:    100,
		FixedSeconds: 0.001,
		FixedJoules:  0.05,
		UnitSeconds:  map[string]float64{"doc": 1e-5},
		UnitJoules:   map[string]float64{"doc": 2e-4},
	}
}

func TestCostModelEvaluate(t *testing.T) {
	m := testModel()
	a := NewAccount()
	a.AddOp()
	a.Add("doc", 1000)
	r := m.Evaluate(a)
	wantSecs := 0.001 + 1000*1e-5 // 0.011
	wantJoules := 100*wantSecs + 0.05 + 1000*2e-4
	if math.Abs(r.Seconds-wantSecs) > 1e-12 {
		t.Errorf("Seconds = %v, want %v", r.Seconds, wantSecs)
	}
	if math.Abs(r.Joules-wantJoules) > 1e-9 {
		t.Errorf("Joules = %v, want %v", r.Joules, wantJoules)
	}
	if r.Ops != 1 {
		t.Errorf("Ops = %v, want 1", r.Ops)
	}
}

func TestReportDerived(t *testing.T) {
	r := Report{Seconds: 2, Joules: 50, Ops: 10}
	if got := r.Throughput(); got != 5 {
		t.Errorf("Throughput = %v, want 5", got)
	}
	if got := r.JoulesPerOp(); got != 5 {
		t.Errorf("JoulesPerOp = %v, want 5", got)
	}
	zero := Report{}
	if zero.Throughput() != 0 || zero.JoulesPerOp() != 0 {
		t.Error("zero report should yield zero derived metrics")
	}
}

func TestCostModelValidate(t *testing.T) {
	if err := testModel().Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	bad := testModel()
	bad.IdleWatts = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative idle watts accepted")
	}
	bad = testModel()
	bad.UnitSeconds["doc"] = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative unit seconds accepted")
	}
	bad = testModel()
	bad.UnitJoules["doc"] = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative unit joules accepted")
	}
}

// The core claim approximation relies on: fewer work units means both less
// simulated time and less simulated energy, but the improvement ratios
// differ because fixed costs remain.
func TestApproximationReducesTimeAndEnergyUnequally(t *testing.T) {
	m := testModel()
	base, approx := NewAccount(), NewAccount()
	base.AddOp()
	base.Add("doc", 10000)
	approx.AddOp()
	approx.Add("doc", 1000)

	rb, ra := m.Evaluate(base), m.Evaluate(approx)
	if ra.Seconds >= rb.Seconds {
		t.Fatal("approximation did not reduce time")
	}
	if ra.Joules >= rb.Joules {
		t.Fatal("approximation did not reduce energy")
	}
	timeRatio := ra.Seconds / rb.Seconds
	energyRatio := ra.Joules / rb.Joules
	if math.Abs(timeRatio-energyRatio) < 1e-9 {
		t.Errorf("time and energy ratios identical (%v); fixed costs should separate them", timeRatio)
	}
}

func TestMeterConstantPower(t *testing.T) {
	mt := Meter{PeriodSeconds: 1}
	j, err := mt.SampledJoules(func(float64) float64 { return 200 }, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(j-20000) > 1e-9 {
		t.Errorf("constant power energy = %v, want 20000", j)
	}
}

func TestMeterPartialLastInterval(t *testing.T) {
	mt := Meter{PeriodSeconds: 1}
	j, err := mt.SampledJoules(func(float64) float64 { return 100 }, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(j-250) > 1e-9 {
		t.Errorf("energy = %v, want 250", j)
	}
}

func TestMeterErrors(t *testing.T) {
	if _, err := (Meter{PeriodSeconds: 0}).SampledJoules(func(float64) float64 { return 1 }, 1); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := (Meter{PeriodSeconds: 1}).SampledJoules(func(float64) float64 { return 1 }, -1); err == nil {
		t.Error("negative duration accepted")
	}
}

// The paper's argument: 1-second sampling is fine because runs are long.
// A varying power trace sampled at 1 s over a long run has a tiny relative
// error, while the same trace over a very short run has a large one.
func TestSamplingErrorShrinksWithRunLength(t *testing.T) {
	mt := Meter{PeriodSeconds: 1}
	watts := func(tm float64) float64 { return 150 + 50*math.Sin(tm/3) }
	long, err := mt.RelativeSamplingError(watts, 600)
	if err != nil {
		t.Fatal(err)
	}
	short, err := mt.RelativeSamplingError(watts, 1.7)
	if err != nil {
		t.Fatal(err)
	}
	if long > 0.01 {
		t.Errorf("long-run sampling error = %v, want < 1%%", long)
	}
	if short <= long {
		t.Errorf("short-run error %v not larger than long-run %v", short, long)
	}
}

// Property: evaluation is additive — evaluating a merged account equals
// the sum of evaluating the parts.
func TestEvaluateAdditiveProperty(t *testing.T) {
	m := testModel()
	f := func(d1, d2 uint16, ops1, ops2 uint8) bool {
		a, b := NewAccount(), NewAccount()
		a.Add("doc", float64(d1))
		b.Add("doc", float64(d2))
		for i := 0; i < int(ops1); i++ {
			a.AddOp()
		}
		for i := 0; i < int(ops2); i++ {
			b.AddOp()
		}
		ra, rb := m.Evaluate(a), m.Evaluate(b)
		a.Merge(b)
		rm := m.Evaluate(a)
		return math.Abs(rm.Seconds-(ra.Seconds+rb.Seconds)) < 1e-9 &&
			math.Abs(rm.Joules-(ra.Joules+rb.Joules)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: more work never decreases time or energy.
func TestEvaluateMonotoneProperty(t *testing.T) {
	m := testModel()
	f := func(d uint16, extra uint16) bool {
		a, b := NewAccount(), NewAccount()
		a.AddOp()
		b.AddOp()
		a.Add("doc", float64(d))
		b.Add("doc", float64(d)+float64(extra))
		ra, rb := m.Evaluate(a), m.Evaluate(b)
		return rb.Seconds >= ra.Seconds && rb.Joules >= ra.Joules
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package experiments

import (
	"fmt"
	"math"
	"sort"

	"green/internal/core"
	"green/internal/metrics"
	"green/internal/model"
	"green/internal/workload"
)

// Ablation experiments isolate the design choices DESIGN.md calls out:
// the monotone calibration envelope, the windowed recalibration policy
// for 0/1 QoS metrics, adaptive vs static loop termination, and
// sensitivity-ranked global recalibration.

func init() {
	register("ablation-envelope", "model inversion with vs without the monotone envelope on noisy calibration data", runAblationEnvelope)
	register("ablation-policy", "default vs windowed recalibration on a 0/1 QoS metric", runAblationPolicy)
	register("ablation-adaptive", "adaptive vs static loop termination at matched QoS", runAblationAdaptive)
	register("ablation-sensitivity", "sensitivity-ranked vs random global recalibration", runAblationSensitivity)
}

// runAblationEnvelope: the true loss curve decays smoothly, calibration
// observes it with noise. Inverting the raw interpolated curve can pick a
// level inside a noise dip whose *true* loss violates the SLA; the
// monotone envelope is conservative. Measured over many random trials.
func runAblationEnvelope(o Options) (*Table, error) {
	const sla = 0.02
	trueLoss := func(level float64) float64 { return 2.0 / level }
	trials := o.scaled(2000, 100)
	rng := workload.NewRand(workload.Split(o.Seed, 900))

	levels := []float64{25, 50, 75, 100, 150, 200, 300, 400}
	var violEnv, violRaw int
	var sumEnv, sumRaw float64
	for trial := 0; trial < trials; trial++ {
		pts := make([]model.CalPoint, len(levels))
		for i, l := range levels {
			noise := 1 + 0.35*rng.NormFloat64()
			if noise < 0.05 {
				noise = 0.05
			}
			pts[i] = model.CalPoint{Level: l, QoSLoss: trueLoss(l) * noise, Work: l}
		}
		m, err := model.BuildLoopModel("abl", pts, 1000, 1000)
		if err != nil {
			return nil, err
		}
		// Envelope-based inversion (the production path).
		if lvl, err := m.StaticParams(sla); err == nil {
			t := trueLoss(lvl)
			sumEnv += t
			if t > sla {
				violEnv++
			}
		} else {
			// Unsatisfiable: precise fallback, loss 0 — never a violation.
			sumEnv += 0
		}
		// Raw inversion: the leftmost point where the *raw* noisy curve
		// (piecewise-linear, no monotone smoothing) crosses below the
		// SLA. A noise dip early in the curve gets picked even though
		// later observations bounce back above the SLA — exactly the
		// failure mode the envelope removes.
		rawLvl := math.NaN()
		for i, p := range pts {
			if p.QoSLoss <= sla {
				if i == 0 {
					rawLvl = p.Level
				} else {
					prev := pts[i-1]
					frac := (prev.QoSLoss - sla) / (prev.QoSLoss - p.QoSLoss)
					rawLvl = prev.Level + frac*(p.Level-prev.Level)
				}
				break
			}
		}
		if !math.IsNaN(rawLvl) {
			t := trueLoss(rawLvl)
			sumRaw += t
			if t > sla {
				violRaw++
			}
		}
	}
	t := &Table{Columns: []string{"inversion", "SLA violation rate", "mean true loss at chosen M"}}
	t.AddRow("monotone envelope (Green)",
		pct(float64(violEnv)/float64(trials)), pct(sumEnv/float64(trials)))
	t.AddRow("raw noisy curve",
		pct(float64(violRaw)/float64(trials)), pct(sumRaw/float64(trials)))
	t.AddNote("true loss 2/M, observations multiplied by lognormal-ish noise; SLA %.0f%%; %d trials",
		sla*100, trials)
	t.AddNote("each trial uses a single noisy calibration run; production calibration averages many runs, shrinking both rates — the comparison isolates the envelope's effect")
	return t, nil
}

// runAblationPolicy: the Bing QoS metric is 0/1 per query, so the default
// per-observation policy sees only extremes: it ratchets the level down on
// every perfect query and up on every changed one, oscillating violently.
// The windowed policy aggregates 100 queries before acting.
func runAblationPolicy(o Options) (*Table, error) {
	f, err := newSearchFixture(o)
	if err != nil {
		return nil, err
	}
	m, err := f.buildLoopModel(f.calQueries)
	if err != nil {
		return nil, err
	}
	const sla = 0.02
	step := 0.1 * float64(f.refN)

	type variant struct {
		name   string
		policy core.RecalibratePolicy
	}
	variants := []variant{
		{"default (per-query)", core.DefaultPolicy{}},
		{"windowed (Figure 9)", &core.WindowedPolicy{Window: 100, BaseInterval: 50}},
	}
	t := &Table{Columns: []string{"policy", "level changes per 100 queries", "final M (xN)", "measured loss"}}
	for _, v := range variants {
		loop, err := core.NewLoop(core.LoopConfig{
			Name: "abl.policy", Model: m, SLA: sla,
			SampleInterval: 50, Policy: v.policy, Step: step, MinLevel: 1,
		})
		if err != nil {
			return nil, err
		}
		queries := f.tstQueries
		nQ := min(len(queries), o.scaled(4000, 400))
		levelChanges := 0
		prevLevel := loop.Level()
		bad := 0
		for i := 0; i < nQ; i++ {
			q := queries[i%len(queries)]
			exec, err := loop.Begin(&searchLoopQoS{engine: f.engine, query: q, topN: f.topN})
			if err != nil {
				return nil, err
			}
			s := f.engine.NewScan(q, f.topN)
			j := 0
			for exec.Continue(j) && s.Step() {
				j++
			}
			exec.Finish(j)
			if loop.Level() != prevLevel {
				levelChanges++
				prevLevel = loop.Level()
			}
			// Measure the loss this configuration would produce.
			precise, _ := f.engine.Search(q, f.topN, 0)
			approx, _ := f.engine.Search(q, f.topN, int(loop.Level()))
			bad += int(metrics.QueryLoss(precise, approx))
		}
		t.AddRow(v.name,
			fmt.Sprintf("%.1f", 100*float64(levelChanges)/float64(nQ)),
			fmt.Sprintf("%.1f", loop.Level()/float64(f.refN)),
			pct(float64(bad)/float64(nQ)))
	}
	t.AddNote("0/1 per-query QoS: the default rule reacts to every monitored query, the windowed rule to 100-query aggregates")
	return t, nil
}

// runAblationAdaptive compares the adaptive M-PRO termination against the
// static-M sweep at matched QoS: for the loss the adaptive version
// achieves, how much work does the equivalent static version need?
func runAblationAdaptive(o Options) (*Table, error) {
	f, err := newSearchFixture(o)
	if err != nil {
		return nil, err
	}
	queries := f.tstQueries
	precise := f.preciseResults(queries)

	adaptive := searchVersion{name: "adaptive", adaptivePeriod: f.refN / 2}
	adLoss, adRep := f.evaluate(adaptive, queries, precise)

	t := &Table{Columns: []string{"version", "QoS loss", "time (norm., adaptive = 100)"}}
	t.AddRow("M-PRO-0.5N (adaptive)", pct(adLoss), "100.0")
	// Static sweep: find the smallest static M with loss <= adaptive's.
	matched := false
	for _, mult := range []float64{0.5, 0.75, 1, 1.5, 2, 3, 4} {
		v := searchVersion{name: "static", maxDocs: int(mult * float64(f.refN))}
		loss, rep := f.evaluate(v, queries, precise)
		t.AddRow(fmt.Sprintf("M=%.2gN (static)", mult), pct(loss),
			norm(rep.Seconds/adRep.Seconds))
		if !matched && loss <= adLoss {
			t.AddNote("first static version matching adaptive QoS: M=%.2gN, using %.0f%% of adaptive's time",
				mult, 100*rep.Seconds/adRep.Seconds)
			matched = true
		}
	}
	if !matched {
		t.AddNote("no static version in the sweep matched adaptive QoS")
	}
	return t, nil
}

// runAblationSensitivity compares sensitivity-ranked global recalibration
// against a random unit order: observations needed to recover an
// application whose QoS violates the SLA because one highly sensitive
// unit is too approximate.
func runAblationSensitivity(o Options) (*Table, error) {
	trials := o.scaled(200, 20)
	convergence := func(random bool) ([]float64, error) {
		var obsCounts []float64
		for trial := 0; trial < trials; trial++ {
			app, err := core.NewApp(core.AppConfig{
				SLA: 0.02, Seed: workload.Split(o.Seed, 950+int64(trial)),
				RandomRanking: random, BackoffThreshold: 1000, // isolate ranking
			})
			if err != nil {
				return nil, err
			}
			// Five units; unit 0 is the sensitive one (its accuracy is
			// what actually matters for the app QoS).
			units := make([]*ablUnit, 5)
			for i := range units {
				sens := 0.1
				if i == 0 {
					sens = 5
				}
				units[i] = &ablUnit{sens: sens, max: 20}
				app.Register(units[i])
			}
			loss := func() float64 {
				return 0.08 / float64(1+units[0].level)
			}
			obs := 0
			for ; obs < 200; obs++ {
				l := loss()
				if l <= 0.02 {
					break
				}
				app.ObserveAppQoS(l)
			}
			obsCounts = append(obsCounts, float64(obs))
		}
		return obsCounts, nil
	}
	ranked, err := convergence(false)
	if err != nil {
		return nil, err
	}
	random, err := convergence(true)
	if err != nil {
		return nil, err
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	p90 := func(xs []float64) float64 {
		ys := append([]float64(nil), xs...)
		sort.Float64s(ys)
		return ys[int(0.9*float64(len(ys)-1))]
	}
	t := &Table{Columns: []string{"ranking", "mean observations to converge", "p90"}}
	t.AddRow("sensitivity (Green)", fmt.Sprintf("%.1f", mean(ranked)), fmt.Sprintf("%.0f", p90(ranked)))
	t.AddRow("random", fmt.Sprintf("%.1f", mean(random)), fmt.Sprintf("%.0f", p90(random)))
	t.AddNote("5 units, one carrying all the QoS sensitivity; %d trials", trials)
	return t, nil
}

// ablUnit is a minimal Unit for the sensitivity ablation.
type ablUnit struct {
	level, max int
	sens       float64
	disabled   bool
}

func (u *ablUnit) Name() string { return "abl" }
func (u *ablUnit) IncreaseAccuracy() bool {
	if u.level >= u.max {
		return false
	}
	u.level++
	return true
}
func (u *ablUnit) DecreaseAccuracy() bool {
	if u.level <= 0 {
		return false
	}
	u.level--
	return true
}
func (u *ablUnit) Sensitivity() float64 { return u.sens }
func (u *ablUnit) DisableApprox()       { u.disabled = true }
func (u *ablUnit) ApproxEnabled() bool  { return !u.disabled }

package experiments

import (
	"fmt"
	"sort"
)

// Calibrate runs the calibration phase for one named application and
// returns its QoS model (a *model.LoopModel or *model.FuncModel, both
// json.Marshaler). This is the programmatic face of cmd/greencal.
func Calibrate(app string, o Options) (any, error) {
	o = o.withDefaults()
	switch app {
	case "search":
		f, err := newSearchFixture(o)
		if err != nil {
			return nil, err
		}
		return f.buildLoopModel(f.calQueries)
	case "eon":
		f := newEonFixture(o)
		return f.eonLoopModel(len(f.cameras))
	case "cga":
		f, err := newCGAFixture(o)
		if err != nil {
			return nil, err
		}
		return f.cgaLoopModel(len(f.graphs))
	case "exp":
		return newBSFixture(o).calibrateExp()
	case "log":
		return newBSFixture(o).calibrateLog()
	default:
		return nil, fmt.Errorf("experiments: unknown app %q (have %v)",
			app, CalibratableApps())
	}
}

// CalibratableApps lists the applications Calibrate accepts.
func CalibratableApps() []string {
	apps := []string{"search", "eon", "cga", "exp", "log"}
	sort.Strings(apps)
	return apps
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4) on the simulated substrates. Each experiment is
// registered under the paper's figure id and produces a Table whose rows
// are the series the figure plots.
//
// Absolute numbers differ from the paper (synthetic corpus, simulated
// power model, different hardware); the experiments reproduce the *shape*
// of each result: orderings, approximate improvement factors, crossovers,
// and convergence behavior. EXPERIMENTS.md records paper-vs-measured for
// each figure.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"
)

// Options control an experiment run.
type Options struct {
	// Seed determinizes workloads. Zero selects 42.
	Seed int64
	// Scale multiplies workload sizes (queries, inputs, generations).
	// 1.0 is the full configuration used for EXPERIMENTS.md; tests use
	// small scales. Zero selects 1.0.
	Scale float64
	// Workers bounds the goroutines used for the calibration phase's
	// training inputs (each input is measured independently; results are
	// merged in input order, so the built model is identical for any
	// value). Zero or one keeps calibration serial.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	return o
}

// scaled returns max(minimum, round(n*scale)).
func (o Options) scaled(n int, minimum int) int {
	v := int(float64(n)*o.Scale + 0.5)
	if v < minimum {
		v = minimum
	}
	return v
}

// Table is one regenerated figure/table.
type Table struct {
	// ID is the experiment id, e.g. "fig10".
	ID string
	// Title describes the paper content being reproduced.
	Title string
	// Columns are the header labels.
	Columns []string
	// Rows hold formatted cells.
	Rows [][]string
	// Notes carry free-form observations (chosen combination, cutoff
	// points, convergence iteration...).
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a formatted note.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(t.Columns, "\t"))
	for _, r := range t.Rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	w.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner produces one experiment's table.
type Runner func(Options) (*Table, error)

type registration struct {
	runner Runner
	title  string
}

var registry = map[string]registration{}

// register installs an experiment under its id; ids are registered by the
// per-experiment files' init functions.
func register(id, title string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = registration{runner: r, title: title}
}

// IDs returns the registered experiment ids, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Title returns the registered description for an id.
func Title(id string) string { return registry[id].title }

// Run executes one experiment by id.
func Run(id string, opts Options) (*Table, error) {
	reg, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %s)",
			id, strings.Join(IDs(), ", "))
	}
	t, err := reg.runner(opts.withDefaults())
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	t.ID = id
	if t.Title == "" {
		t.Title = reg.title
	}
	return t, nil
}

// pct formats a fraction as a percentage, normalizing negative zero.
func pct(f float64) string {
	if f == 0 {
		f = 0 // collapse -0
	}
	return fmt.Sprintf("%.2f%%", 100*f)
}

// norm formats a ratio as a normalized percentage (base = 100).
func norm(f float64) string { return fmt.Sprintf("%.1f", 100*f) }

package experiments

import (
	"strings"
	"testing"
)

func TestAblationEnvelope(t *testing.T) {
	tbl, err := Run("ablation-envelope", Options{Seed: 42, Scale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	env := parsePct(t, tbl.Rows[0][1])
	raw := parsePct(t, tbl.Rows[1][1])
	if env >= raw {
		t.Errorf("envelope violation rate %v not below raw %v", env, raw)
	}
	envLoss := parsePct(t, tbl.Rows[0][2])
	rawLoss := parsePct(t, tbl.Rows[1][2])
	if envLoss >= rawLoss {
		t.Errorf("envelope mean loss %v not below raw %v", envLoss, rawLoss)
	}
}

func TestAblationPolicy(t *testing.T) {
	tbl, err := Run("ablation-policy", tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// The windowed policy must deliver a loss at or near the SLA while
	// the per-query default, flapping on 0/1 observations, lands far off.
	defLoss := parsePct(t, tbl.Rows[0][3])
	winLoss := parsePct(t, tbl.Rows[1][3])
	if winLoss > 0.06 {
		t.Errorf("windowed loss %v too far above the 2%% SLA", winLoss)
	}
	if defLoss <= winLoss {
		t.Errorf("default policy loss %v unexpectedly at/below windowed %v", defLoss, winLoss)
	}
}

func TestAblationAdaptive(t *testing.T) {
	tbl, err := Run("ablation-adaptive", tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows[0][0] != "M-PRO-0.5N (adaptive)" {
		t.Fatalf("unexpected first row %v", tbl.Rows[0])
	}
	adLoss := parsePct(t, tbl.Rows[0][1])
	if adLoss > 0.05 {
		t.Errorf("adaptive loss %v unexpectedly high", adLoss)
	}
	// The matched static version must need at least as much work.
	found := false
	for _, n := range tbl.Notes {
		if strings.Contains(n, "first static version matching") {
			found = true
		}
	}
	if !found {
		t.Errorf("no matching-static note: %v", tbl.Notes)
	}
}

func TestAblationSensitivity(t *testing.T) {
	tbl, err := Run("ablation-sensitivity", Options{Seed: 42, Scale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	ranked, err2 := parseFloatCell(tbl.Rows[0][1])
	if err2 != nil {
		t.Fatal(err2)
	}
	random, err2 := parseFloatCell(tbl.Rows[1][1])
	if err2 != nil {
		t.Fatal(err2)
	}
	if ranked >= random {
		t.Errorf("sensitivity ranking (%v obs) not faster than random (%v obs)", ranked, random)
	}
}

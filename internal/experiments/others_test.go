package experiments

import (
	"strconv"
	"strings"
	"testing"
)

var eonOpts = Options{Seed: 42, Scale: 0.05}

func TestFig15Shape(t *testing.T) {
	tbl, err := Run("fig15", eonOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (N=5..9 + base)", len(tbl.Rows))
	}
	// Time and energy grow monotonically with N and stay below base.
	prevTime := 0.0
	for i := 0; i < 5; i++ {
		tm := parseNorm(t, tbl.Rows[i][1])
		en := parseNorm(t, tbl.Rows[i][2])
		if tm <= prevTime {
			t.Errorf("row %d: time %v not increasing", i, tm)
		}
		if tm >= 1 || en >= 1 {
			t.Errorf("row %d: version not cheaper than base (%v, %v)", i, tm, en)
		}
		prevTime = tm
	}
	// N=5 should cost roughly 25% of base (25 vs 100 passes).
	if tm := parseNorm(t, tbl.Rows[0][1]); tm < 0.15 || tm > 0.45 {
		t.Errorf("N=5 time %v, want ~0.25-0.35", tm)
	}
}

func TestFig16Shape(t *testing.T) {
	tbl, err := Run("fig16", eonOpts)
	if err != nil {
		t.Fatal(err)
	}
	prev := 2.0
	for i := 0; i < 5; i++ {
		loss := parsePct(t, tbl.Rows[i][1])
		if loss <= 0 {
			t.Errorf("row %d: zero loss", i)
		}
		if loss > prev+1e-9 {
			t.Errorf("row %d: loss %v not decreasing with N", i, loss)
		}
		if loss > 0.25 {
			t.Errorf("row %d: loss %v implausibly large", i, loss)
		}
		prev = loss
	}
	if base := parsePct(t, tbl.Rows[5][1]); base != 0 {
		t.Errorf("base loss = %v", base)
	}
}

func TestFig17Shape(t *testing.T) {
	tbl, err := Run("fig17", eonOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 3 {
		t.Fatal("too few rows")
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	if d := parsePct(t, last[2]); d != 0 {
		t.Errorf("self-difference = %v", d)
	}
	for _, row := range tbl.Rows {
		if d := parsePct(t, row[2]); d > 0.03 {
			t.Errorf("training size %s differs by %v; model not robust", row[0], d)
		}
	}
}

var cgaOpts = Options{Seed: 42, Scale: 0.12}

func TestFig18Shape(t *testing.T) {
	tbl, err := Run("fig18", cgaOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(cgaFractions)+1 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	prev := 0.0
	for i := 0; i < len(cgaFractions); i++ {
		tm := parseNorm(t, tbl.Rows[i][1])
		if tm <= prev || tm >= 1 {
			t.Errorf("row %d time %v not increasing below base", i, tm)
		}
		prev = tm
	}
	// G = half base should cost roughly half.
	half := parseNorm(t, tbl.Rows[2][1])
	if half < 0.4 || half > 0.75 {
		t.Errorf("half-G time = %v, want ~0.5-0.65", half)
	}
}

func TestFig19Shape(t *testing.T) {
	tbl, err := Run("fig19", cgaOpts)
	if err != nil {
		t.Fatal(err)
	}
	prev := 10.0
	for i := 0; i < len(cgaFractions); i++ {
		loss := parsePct(t, tbl.Rows[i][1])
		if loss > prev+1e-9 {
			t.Errorf("row %d loss %v not decreasing with G", i, loss)
		}
		prev = loss
	}
	// Half the generations: paper says loss stays "reasonable" (<10%).
	if loss := parsePct(t, tbl.Rows[2][1]); loss > 0.12 {
		t.Errorf("half-G loss %v > 12%%", loss)
	}
}

func TestFig20Shape(t *testing.T) {
	tbl, err := Run("fig20", cgaOpts)
	if err != nil {
		t.Fatal(err)
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	if d := parsePct(t, last[2]); d != 0 {
		t.Errorf("self-difference = %v", d)
	}
	// CGA is the noisiest app in the paper; allow a looser but still
	// bounded difference.
	for _, row := range tbl.Rows {
		if d := parsePct(t, row[2]); d > 0.10 {
			t.Errorf("training size %s differs by %v", row[0], d)
		}
	}
}

var dftOpts = Options{Seed: 42, Scale: 0.08}

func TestFig21Shape(t *testing.T) {
	tbl, err := Run("fig21", dftOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 13 { // 6 C + 6 C+S + base
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Every approximated version is cheaper than base; C+S cheaper than
	// the matching C; lower digits cheaper than higher digits.
	for i := 0; i < 12; i++ {
		tm := parseNorm(t, tbl.Rows[i][1])
		if tm >= 1 {
			t.Errorf("%s time %v not below base", tbl.Rows[i][0], tm)
		}
	}
	for i := 0; i < 6; i++ {
		c := parseNorm(t, tbl.Rows[i][1])
		cs := parseNorm(t, tbl.Rows[i+6][1])
		if cs >= c {
			t.Errorf("C+S(%s) %v not cheaper than C %v", tbl.Rows[i][0], cs, c)
		}
	}
	// The best version saves roughly 20% (paper: 26.3%).
	if best := parseNorm(t, tbl.Rows[6][1]); best > 0.90 || best < 0.60 {
		t.Errorf("C+S(3.2) time = %v, want ~0.75-0.85", best)
	}
}

func TestFig22Shape(t *testing.T) {
	tbl, err := Run("fig22", dftOpts)
	if err != nil {
		t.Fatal(err)
	}
	// 3.2-digit versions show small positive loss; >= 5.2 digits are
	// effectively lossless (paper: no loss beyond 7.3 digits; loss at
	// 3.2 digits only 0.22%).
	c32 := parsePct(t, tbl.Rows[0][1])
	cs32 := parsePct(t, tbl.Rows[6][1])
	if c32 <= 0 || cs32 <= 0 {
		t.Error("3.2-digit versions show zero loss; experiment vacuous")
	}
	if cs32 > 0.01 {
		t.Errorf("C+S(3.2) loss %v > 1%%", cs32)
	}
	for i := 2; i < 6; i++ { // 7.3 digits and up
		if l := parsePct(t, tbl.Rows[i][1]); l > 1e-5 {
			t.Errorf("%s loss %v not negligible", tbl.Rows[i][0], l)
		}
	}
}

var bsOpts = Options{Seed: 42, Scale: 0.15}

func TestFig8aShape(t *testing.T) {
	tbl, err := Run("fig8a", bsOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Columns) != 5 { // x + 4 versions
		t.Fatalf("columns = %v", tbl.Columns)
	}
	// At every x, higher Taylor degree has no larger loss; loss grows
	// with |x| for each version.
	for _, row := range tbl.Rows {
		for c := 2; c < 5; c++ {
			lo := parsePct(t, row[c-1])
			hi := parsePct(t, row[c])
			if hi > lo+1e-9 {
				t.Errorf("x=%s: e-version %d loss %v above lower version %v",
					row[0], c, hi, lo)
			}
		}
	}
}

func TestFig8bShape(t *testing.T) {
	tbl, err := Run("fig8b", bsOpts)
	if err != nil {
		t.Fatal(err)
	}
	// The log loss curves form a V around x = 1.
	minAt := ""
	minLoss := 1e9
	for _, row := range tbl.Rows {
		l := parsePct(t, row[1])
		if l < minLoss {
			minLoss = l
			minAt = row[0]
		}
	}
	x, err2 := parseFloatCell(minAt)
	if err2 != nil {
		t.Fatal(err2)
	}
	if x < 0.8 || x > 1.2 {
		t.Errorf("lg(2) loss minimum at x=%v, want near 1", x)
	}
}

func TestFig8cShape(t *testing.T) {
	tbl, err := Run("fig8c", bsOpts)
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string][]string{}
	for _, r := range tbl.Rows {
		rows[r[0]] = r
	}
	// e(cb) keeps loss far below fixed e(3) while still improving.
	eCb := parsePct(t, rows["e(cb)"][1])
	e3 := parsePct(t, rows["e(3)"][1])
	if eCb >= e3 {
		t.Errorf("e(cb) loss %v not below e(3) %v", eCb, e3)
	}
	if imp := parsePct(t, rows["e(cb)"][2]); imp <= 0 {
		t.Errorf("e(cb) improvement %v", imp)
	}
	// Combined version beats single-function versions on improvement.
	comb := parsePct(t, rows["e(cb)+lg(4)"][2])
	if comb <= parsePct(t, rows["e(cb)"][2]) {
		t.Errorf("combined improvement %v not above e(cb) alone", comb)
	}
	// The exp range notes must include at least one approximate and the
	// precise region.
	joined := strings.Join(tbl.Notes, "\n")
	if !strings.Contains(joined, "precise") || !strings.Contains(joined, "e(") {
		t.Errorf("range notes incomplete: %v", tbl.Notes)
	}
}

func TestFig23And24Shape(t *testing.T) {
	t23, err := Run("fig23", bsOpts)
	if err != nil {
		t.Fatal(err)
	}
	t24, err := Run("fig24", bsOpts)
	if err != nil {
		t.Fatal(err)
	}
	// Combined version: substantial time/energy reduction...
	var combTime float64
	for _, r := range t23.Rows {
		if r[0] == "e(cb)+lg(4)" {
			combTime = parseNorm(t, r[1])
		}
	}
	if combTime == 0 || combTime > 0.92 {
		t.Errorf("combined version time %v, want < 0.92 of base", combTime)
	}
	// ...with sub-1% QoS loss (paper: < 0.8%).
	for _, r := range t24.Rows {
		if r[0] == "e(cb)+lg(4)" {
			if l := parsePct(t, r[1]); l > 0.01 {
				t.Errorf("combined loss %v > 1%%", l)
			}
		}
	}
	// The combination search note names a selected combo.
	found := false
	for _, n := range t23.Notes {
		if strings.Contains(n, "combination search selected") {
			found = true
		}
	}
	if !found {
		t.Errorf("no combination-search note: %v", t23.Notes)
	}
}

func TestOverheadNegligible(t *testing.T) {
	tbl, err := Run("overhead", Options{Seed: 42, Scale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	rel, err2 := parseFloatCell(tbl.Rows[1][2])
	if err2 != nil {
		t.Fatal(err2)
	}
	// "Indistinguishable" allows scheduler noise; 10% is a generous
	// bound that still catches a real per-iteration overhead.
	if rel > 1.10 {
		t.Errorf("green overhead ratio %v > 1.10", rel)
	}
}

func TestBackoffConverges(t *testing.T) {
	tbl, err := Run("backoff", Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	converged := false
	for _, n := range tbl.Notes {
		if strings.Contains(n, "converged") && !strings.Contains(n, "did not") {
			converged = true
		}
	}
	if !converged {
		t.Errorf("backoff did not converge: %v", tbl.Notes)
	}
	// Final row loss must be at or below the SLA.
	last := tbl.Rows[len(tbl.Rows)-1]
	if l := parsePct(t, last[3]); l > 0.02 {
		t.Errorf("final loss %v > SLA", l)
	}
}

func parseFloatCell(s string) (float64, error) {
	return strconv.ParseFloat(strings.TrimSpace(s), 64)
}

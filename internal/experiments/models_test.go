package experiments

import (
	"encoding/json"
	"testing"

	"green/internal/model"
)

func TestCalibrateUnknownApp(t *testing.T) {
	if _, err := Calibrate("nope", Options{}); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestCalibratableAppsListed(t *testing.T) {
	apps := CalibratableApps()
	if len(apps) != 5 {
		t.Fatalf("apps = %v", apps)
	}
}

func TestCalibrateLoopApps(t *testing.T) {
	for _, app := range []string{"search", "cga"} {
		m, err := Calibrate(app, Options{Seed: 42, Scale: 0.05})
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		lm, ok := m.(*model.LoopModel)
		if !ok {
			t.Fatalf("%s: got %T, want *model.LoopModel", app, m)
		}
		if len(lm.Levels()) == 0 {
			t.Errorf("%s: empty model", app)
		}
		// The model must serialize (greencal's contract).
		if _, err := json.Marshal(lm); err != nil {
			t.Errorf("%s: marshal: %v", app, err)
		}
	}
}

func TestCalibrateFuncApps(t *testing.T) {
	for _, app := range []string{"exp", "log"} {
		m, err := Calibrate(app, Options{Seed: 42, Scale: 0.05})
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		fm, ok := m.(*model.FuncModel)
		if !ok {
			t.Fatalf("%s: got %T, want *model.FuncModel", app, m)
		}
		if len(fm.Versions) == 0 {
			t.Errorf("%s: no versions", app)
		}
		if _, err := json.Marshal(fm); err != nil {
			t.Errorf("%s: marshal: %v", app, err)
		}
	}
}

func TestCalibrateEon(t *testing.T) {
	if testing.Short() {
		t.Skip("rendering calibration is slow")
	}
	m, err := Calibrate("eon", Options{Seed: 42, Scale: 0.04})
	if err != nil {
		t.Fatal(err)
	}
	lm, ok := m.(*model.LoopModel)
	if !ok {
		t.Fatalf("got %T", m)
	}
	// Loss at the largest knot must be below loss at the smallest.
	levels := lm.Levels()
	if lm.PredictLoss(levels[len(levels)-1]) >= lm.PredictLoss(levels[0]) {
		t.Error("eon model not decreasing")
	}
}

package experiments

import (
	"fmt"
	"math"
	"sort"

	"green/internal/approxmath"
	"green/internal/core"
	"green/internal/dft"
	"green/internal/energy"
	"green/internal/metrics"
	"green/internal/model"
	"green/internal/raytracer"
	"green/internal/search"
)

func init() {
	register("selector",
		"reactive vs proactive per-input selection: loss distribution, mis-approximation counts, simulated time",
		runSelector)
}

// runSelector compares the reactive-only controller (Green's sampling
// law alone) against the staged pipeline with a per-input Selector on
// three workloads. For each it reports the served loss distribution
// (mean and standard deviation), how often the controller
// over-approximated (served loss above the SLA) or under-approximated
// (met the SLA but did strictly more work than the cheapest calibrated
// configuration that also would have), and the simulated per-operation
// time from the workload's energy cost model. Simulated time — not wall
// clock — keeps the experiment deterministic and lint-clean.
func runSelector(o Options) (*Table, error) {
	t := &Table{Columns: []string{
		"workload", "controller", "mean loss", "loss stddev",
		"over-approx", "under-approx", "sim ns/op",
	}}
	if err := selectorSearchRows(o, t); err != nil {
		return nil, err
	}
	if err := selectorEonRows(o, t); err != nil {
		return nil, err
	}
	if err := selectorDFTRows(o, t); err != nil {
		return nil, err
	}
	t.AddNote("over-approx = served loss above the SLA; under-approx = SLA met with strictly more work than the cheapest per-input configuration that also meets it")
	t.AddNote("monitored executions run precisely by design, so both controllers pay the same sampling tax of under-approximated inputs")
	return t, nil
}

// quantileEdges derives feature-bucket edges from the empirical
// quantiles of the calibration keys, so each bucket trains on a
// comparable share of inputs. Duplicate quantiles collapse (bucket
// edges must strictly increase), so skewed key distributions simply
// yield fewer buckets.
func quantileEdges(keys []float64, nb int) []float64 {
	s := append([]float64(nil), keys...)
	sort.Float64s(s)
	edges := make([]float64, 0, nb+1)
	for i := 0; i <= nb; i++ {
		v := s[i*(len(s)-1)/nb]
		if len(edges) == 0 || v > edges[len(edges)-1] {
			edges = append(edges, v)
		}
	}
	if len(edges) < 2 {
		edges = append(edges, edges[0]+1)
	}
	return edges
}

// selOutcome accumulates one controller's served distribution.
type selOutcome struct {
	losses      []float64
	over, under int
	acct        *energy.Account
}

func newSelOutcome() *selOutcome {
	return &selOutcome{acct: energy.NewAccount()}
}

func (s *selOutcome) add(loss float64, over, under bool) {
	s.losses = append(s.losses, loss)
	if over {
		s.over++
	}
	if under {
		s.under++
	}
}

func (s *selOutcome) meanStd() (mean, std float64) {
	if len(s.losses) == 0 {
		return 0, 0
	}
	for _, l := range s.losses {
		mean += l
	}
	mean /= float64(len(s.losses))
	for _, l := range s.losses {
		std += (l - mean) * (l - mean)
	}
	return mean, math.Sqrt(std / float64(len(s.losses)))
}

func (s *selOutcome) variance() float64 {
	_, std := s.meanStd()
	return std * std
}

func (s *selOutcome) addRow(t *Table, workload, controller string, cost *energy.CostModel) {
	mean, std := s.meanStd()
	rep := cost.Evaluate(s.acct)
	nsPerOp := rep.Seconds / float64(len(s.losses)) * 1e9
	t.AddRow(workload, controller, pct(mean), pct(std),
		fmt.Sprintf("%d", s.over), fmt.Sprintf("%d", s.under),
		fmt.Sprintf("%.0f", nsPerOp))
}

// ---------------------------------------------------------------------
// Search: the matching-document loop, featured by posting mass.
// ---------------------------------------------------------------------

const selectorSearchSLA = 0.05

// postingMass is the per-query feature: the summed document frequency of
// the query terms. It is computable before the scan starts (a dictionary
// lookup per term) and predicts how quickly the top-N stabilizes —
// high-mass queries need deeper scans for an exact top-N.
func postingMass(e *search.Engine, q search.Query) float64 {
	m := 0.0
	for _, term := range q.Terms {
		m += float64(e.DocFreq(term))
	}
	return m
}

func selectorSearchRows(o Options, t *Table) error {
	f, err := newSearchFixture(o)
	if err != nil {
		return err
	}
	knots := make([]float64, len(calibrationKnots))
	for i, k := range calibrationKnots {
		knots[i] = math.Max(1, k*float64(f.refN))
	}
	baseLevel := float64(f.engine.Docs())
	cal, err := core.NewLoopCalibration("search.match", knots, baseLevel, baseLevel)
	if err != nil {
		return err
	}
	calKeys := make([]float64, len(f.calQueries))
	for i, q := range f.calQueries {
		calKeys[i] = postingMass(f.engine, q)
	}
	if err := cal.FeatureBuckets(quantileEdges(calKeys, 4)); err != nil {
		return err
	}
	err = cal.AddRunsFeatParallel(f.workers, len(f.calQueries), func(i int) (core.Features, []float64, []float64, error) {
		q := f.calQueries[i]
		precise, _ := f.engine.Search(q, f.topN, 0)
		losses := make([]float64, len(knots))
		works := make([]float64, len(knots))
		for j, k := range knots {
			approx, processed := f.engine.Search(q, f.topN, int(k))
			losses[j] = metrics.QueryLoss(precise, approx)
			works[j] = float64(processed)
		}
		return core.Features{Key: calKeys[i], Valid: true}, losses, works, nil
	})
	if err != nil {
		return err
	}
	m, err := cal.Build()
	if err != nil {
		return err
	}

	// Per-query oracle: the precise top-N and the fewest documents any
	// calibrated cap processes while still matching it (query loss is
	// 0/1, so "meets the SLA" means an exact match).
	type searchOracle struct {
		precise []int
		minDocs int
	}
	oracles := make([]searchOracle, len(f.tstQueries))
	for i, q := range f.tstQueries {
		precise, pdocs := f.engine.Search(q, f.topN, 0)
		minDocs := pdocs
		for _, k := range knots {
			approx, docs := f.engine.Search(q, f.topN, int(k))
			if metrics.QueryLoss(precise, approx) == 0 {
				minDocs = docs
				break
			}
		}
		oracles[i] = searchOracle{precise: precise, minDocs: minDocs}
	}

	drive := func(useSel bool) (*selOutcome, error) {
		loop, err := core.NewLoop(core.LoopConfig{
			Name: "search.match", Model: m, SLA: selectorSearchSLA,
			SampleInterval: 25, MinLevel: 1,
		})
		if err != nil {
			return nil, err
		}
		if useSel {
			sel, err := cal.BuildSelector()
			if err != nil {
				return nil, err
			}
			loop.InstallSelector(sel)
		}
		out := newSelOutcome()
		for i, q := range f.tstQueries {
			qos := &searchLoopQoS{engine: f.engine, query: q, topN: f.topN}
			// ExecFeat with no Selector installed is bit-identical to
			// Begin, so the reactive row threads the same features and
			// simply never consults them.
			exec, err := loop.ExecFeat(qos, core.Features{Key: postingMass(f.engine, q), Valid: true})
			if err != nil {
				return nil, err
			}
			s := f.engine.NewScan(q, f.topN)
			it := 0
			for exec.Continue(it) && s.Step() {
				it++
			}
			exec.Finish(it)
			loss := metrics.QueryLoss(oracles[i].precise, s.TopN())
			docs := s.Processed()
			out.add(loss, loss > selectorSearchSLA,
				loss <= selectorSearchSLA && docs > oracles[i].minDocs)
			out.acct.AddOp()
			out.acct.Add("doc", float64(docs))
		}
		return out, nil
	}
	reactive, err := drive(false)
	if err != nil {
		return err
	}
	proactive, err := drive(true)
	if err != nil {
		return err
	}
	reactive.addRow(t, "search", "reactive", f.cost)
	proactive.addRow(t, "search", "proactive", f.cost)
	t.AddNote("search: SLA = %s, feature = posting mass, %d test queries; loss variance reactive %.5f vs proactive %.5f",
		pct(selectorSearchSLA), len(f.tstQueries), reactive.variance(), proactive.variance())
	return nil
}

// ---------------------------------------------------------------------
// Raytracer: the pass loop, featured by camera distance.
// ---------------------------------------------------------------------

// eonLoopQoS adapts one rendering's pass loop to the LoopQoS interface:
// Record snapshots the framebuffer the approximation would ship, Loss
// compares it against the base rendering of the same input.
type eonLoopQoS struct {
	base     []float64
	r        *raytracer.Renderer
	recorded []float64
}

func (e *eonLoopQoS) Record(int) {
	e.recorded = append(e.recorded[:0], e.r.Snapshot().Pix...)
}

func (e *eonLoopQoS) Loss(int) float64 {
	if e.recorded == nil {
		return 0
	}
	d, err := metrics.PixelDiff(e.base, e.recorded)
	if err != nil {
		return 0
	}
	return d
}

// camDistance is the per-input feature: how far the camera sits from
// the origin the random cameras orbit. Distant cameras shrink the scene
// into fewer, lower-variance pixels, so their images converge in fewer
// passes.
func camDistance(c raytracer.Camera) float64 {
	return math.Sqrt(c.Pos.X*c.Pos.X + c.Pos.Y*c.Pos.Y + c.Pos.Z*c.Pos.Z)
}

func selectorEonRows(o Options, t *Table) error {
	f := newEonFixture(o)
	nTrain := len(f.cameras) / 2
	if nTrain < 2 {
		nTrain = 2
	}
	if nTrain >= len(f.cameras) {
		return fmt.Errorf("selector: eon needs at least %d inputs, have %d", nTrain+1, len(f.cameras))
	}
	knots := make([]float64, len(eonVersionNs))
	for i, n := range eonVersionNs {
		knots[i] = float64(n * n)
	}
	baseLevel := float64(f.baseN * f.baseN)
	raysPerPass := float64(f.w * f.h * 3)
	cal, err := core.NewLoopCalibration("eon.passes", knots, baseLevel, baseLevel*raysPerPass)
	if err != nil {
		return err
	}
	trainKeys := make([]float64, nTrain)
	for i := 0; i < nTrain; i++ {
		trainKeys[i] = camDistance(f.cameras[i])
	}
	if err := cal.FeatureBuckets(quantileEdges(trainKeys, 3)); err != nil {
		return err
	}

	// sweep renders input i incrementally and returns per-knot losses
	// and cumulative ray counts, plus the base image.
	sweep := func(i int) (*raytracer.Image, []float64, []float64, error) {
		baseImg, _, err := f.renderInput(i, f.baseN*f.baseN)
		if err != nil {
			return nil, nil, nil, err
		}
		r, err := raytracer.NewRenderer(f.scene, f.cameras[i], f.w, f.h, f.seeds[i])
		if err != nil {
			return nil, nil, nil, err
		}
		losses := make([]float64, len(knots))
		works := make([]float64, len(knots))
		for k, knot := range knots {
			for r.Passes() < int(knot) {
				r.Pass()
			}
			d, err := metrics.PixelDiff(baseImg.Pix, r.Snapshot().Pix)
			if err != nil {
				return nil, nil, nil, err
			}
			losses[k] = d
			works[k] = float64(r.Rays())
		}
		return baseImg, losses, works, nil
	}

	for i := 0; i < nTrain; i++ {
		_, losses, works, err := sweep(i)
		if err != nil {
			return err
		}
		if err := cal.AddRunFeat(core.Features{Key: trainKeys[i], Valid: true}, losses, works); err != nil {
			return err
		}
	}
	m, err := cal.Build()
	if err != nil {
		return err
	}
	// SLA between the calibrated extremes: tight enough that the
	// cheapest knot misses it on hard inputs, loose enough that deeper
	// knots satisfy it. The geometric mean of the global mean losses at
	// the coarsest and finest knots sits there by construction.
	coarse := m.PredictLoss(knots[0])
	fine := m.PredictLoss(knots[len(knots)-1])
	sla := math.Sqrt(math.Max(fine, 1e-6) * math.Max(coarse, 1e-6))
	if !(sla > 0) || sla >= 1 {
		sla = 0.02
	}

	// Per-test-input oracle: base image plus the fewest rays any
	// calibrated pass budget needs to meet the SLA on that input.
	type eonOracle struct {
		base    *raytracer.Image
		minRays float64
	}
	oracles := make([]eonOracle, 0, len(f.cameras)-nTrain)
	for i := nTrain; i < len(f.cameras); i++ {
		baseImg, losses, works, err := sweep(i)
		if err != nil {
			return err
		}
		minRays := works[len(works)-1] // full-depth fallback
		for k := range knots {
			if losses[k] <= sla {
				minRays = works[k]
				break
			}
		}
		oracles = append(oracles, eonOracle{base: baseImg, minRays: minRays})
	}

	drive := func(useSel bool) (*selOutcome, error) {
		loop, err := core.NewLoop(core.LoopConfig{
			Name: "eon.passes", Model: m, SLA: sla,
			SampleInterval: 8, MinLevel: knots[0],
		})
		if err != nil {
			return nil, err
		}
		if useSel {
			sel, err := cal.BuildSelector()
			if err != nil {
				return nil, err
			}
			loop.InstallSelector(sel)
		}
		out := newSelOutcome()
		for oi, i := 0, nTrain; i < len(f.cameras); oi, i = oi+1, i+1 {
			r, err := raytracer.NewRenderer(f.scene, f.cameras[i], f.w, f.h, f.seeds[i])
			if err != nil {
				return nil, err
			}
			qos := &eonLoopQoS{base: oracles[oi].base.Pix, r: r}
			// As in the search drive: without a Selector the features are
			// inert and ExecFeat is bit-identical to Begin.
			exec, err := loop.ExecFeat(qos, core.Features{Key: camDistance(f.cameras[i]), Valid: true})
			if err != nil {
				return nil, err
			}
			it := 0
			for it < f.baseN*f.baseN && exec.Continue(it) {
				r.Pass()
				it++
			}
			exec.Finish(it)
			loss, err := metrics.PixelDiff(oracles[oi].base.Pix, r.Snapshot().Pix)
			if err != nil {
				return nil, err
			}
			rays := float64(r.Rays())
			out.add(loss, loss > sla, loss <= sla && rays > oracles[oi].minRays)
			out.acct.AddOp()
			out.acct.Add("ray", rays)
		}
		return out, nil
	}
	reactive, err := drive(false)
	if err != nil {
		return err
	}
	proactive, err := drive(true)
	if err != nil {
		return err
	}
	reactive.addRow(t, "raytracer", "reactive", f.cost)
	proactive.addRow(t, "raytracer", "proactive", f.cost)
	t.AddNote("raytracer: SLA = %s (derived from the calibrated loss range), feature = camera distance, %d train / %d test inputs",
		pct(sla), nTrain, len(f.cameras)-nTrain)
	return nil
}

// ---------------------------------------------------------------------
// DFT: the trig version ladder, featured by signal crest factor.
// ---------------------------------------------------------------------

// crestFactor is the per-signal feature: peak amplitude over RMS.
// Spiky signals concentrate spectral energy where trig error matters
// most, so they need finer grades for the same normalized loss.
func crestFactor(sig []float64) float64 {
	peak, sum := 0.0, 0.0
	for _, x := range sig {
		if a := math.Abs(x); a > peak {
			peak = a
		}
		sum += x * x
	}
	rms := math.Sqrt(sum / float64(len(sig)))
	if rms == 0 {
		return 0
	}
	return peak / rms
}

func selectorDFTRows(o Options, t *Table) error {
	f := newDFTFixture(o)
	versions := dftVersionSet()
	// The FuncSelector walks its ladder cheapest-first, so order the
	// version set by work ascending (name-stable for determinism).
	sort.SliceStable(versions, func(i, j int) bool {
		wi := versions[i].cosGrade.Terms() + versions[i].sinGrade.Terms()
		wj := versions[j].cosGrade.Terms() + versions[j].sinGrade.Terms()
		return wi < wj
	})
	termsOf := func(v dftVersion) float64 {
		return (float64(v.cosGrade.Terms()+v.sinGrade.Terms()) + dftBodyTerms) *
			float64(f.n) * float64(f.n)
	}
	preciseTerms := (float64(2*approxmath.TrigPrecise.Terms()) + dftBodyTerms) *
		float64(f.n) * float64(f.n)

	nTrain := len(f.signals) / 2
	if nTrain < 2 {
		nTrain = 2
	}
	if nTrain >= len(f.signals) {
		return fmt.Errorf("selector: dft needs at least %d signals, have %d", nTrain+1, len(f.signals))
	}

	// Per-signal per-version loss matrix against the precise spectra.
	preciseRe := make([][]float64, len(f.signals))
	preciseIm := make([][]float64, len(f.signals))
	for i, sig := range f.signals {
		re, im, err := dft.Transform(sig, dft.PreciseTrig())
		if err != nil {
			return err
		}
		preciseRe[i], preciseIm[i] = re, im
	}
	loss := make([][]float64, len(versions)) // [version][signal]
	for v, ver := range versions {
		trig := dft.Trig{
			Sin: approxmath.SinFn(ver.sinGrade),
			Cos: approxmath.CosFn(ver.cosGrade),
		}
		loss[v] = make([]float64, len(f.signals))
		for i, sig := range f.signals {
			re, im, err := dft.Transform(sig, trig)
			if err != nil {
				return err
			}
			lr, err := metrics.RMSNormDiff(preciseRe[i], re)
			if err != nil {
				return err
			}
			li, err := metrics.RMSNormDiff(preciseIm[i], im)
			if err != nil {
				return err
			}
			loss[v][i] = (lr + li) / 2
		}
	}
	trainMean := make([]float64, len(versions))
	for v := range versions {
		for i := 0; i < nTrain; i++ {
			trainMean[v] += loss[v][i]
		}
		trainMean[v] /= float64(nTrain)
	}
	// The trig grades are orders of magnitude apart, so only the border
	// between the two coarsest versions leaves room for per-input
	// choice: an SLA between their training means (geometric midpoint)
	// makes the cheapest version a per-signal gamble rather than a
	// global yes or no.
	sortedMeans := append([]float64(nil), trainMean...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sortedMeans)))
	sla := math.Sqrt(math.Max(sortedMeans[0], 1e-12) * math.Max(sortedMeans[1], 1e-12))
	if !(sla > 0) || sla >= 1 {
		sla = 0.01
	}

	// Reactive baseline: the one version the global calibration picks —
	// cheapest whose training mean loss meets the SLA, else precise.
	reactiveV := model.PreciseVersion
	for v := range versions {
		if trainMean[v] <= sla {
			reactiveV = v
			break
		}
	}

	// Proactive: a FuncSelector bucketed by crest factor.
	names := make([]string, len(versions))
	work := make([]float64, len(versions))
	for v, ver := range versions {
		names[v] = ver.name
		work[v] = termsOf(ver)
	}
	fcal, err := core.NewFuncCalibration("dft.trig", preciseTerms, names, work, 1)
	if err != nil {
		return err
	}
	trainKeys := make([]float64, nTrain)
	for i := 0; i < nTrain; i++ {
		trainKeys[i] = crestFactor(f.signals[i])
	}
	if err := fcal.FeatureBuckets(quantileEdges(trainKeys, 3)); err != nil {
		return err
	}
	for i := 0; i < nTrain; i++ {
		feat := core.Features{Key: trainKeys[i], Valid: true}
		for v := range versions {
			if err := fcal.AddSampleFeat(feat, v, 0, loss[v][i]); err != nil {
				return err
			}
		}
	}
	fsel, err := fcal.BuildFuncSelector()
	if err != nil {
		return err
	}

	lossAndTerms := func(v, i int) (float64, float64) {
		if v == model.PreciseVersion {
			return 0, preciseTerms
		}
		return loss[v][i], termsOf(versions[v])
	}
	oracleTerms := func(i int) float64 {
		// Cheapest version meeting the SLA on this signal; the ladder is
		// work-sorted, so the first hit is the floor.
		for v := range versions {
			if loss[v][i] <= sla {
				return termsOf(versions[v])
			}
		}
		return preciseTerms
	}

	eval := func(choose func(i int) int) *selOutcome {
		out := newSelOutcome()
		for i := nTrain; i < len(f.signals); i++ {
			l, terms := lossAndTerms(choose(i), i)
			out.add(l, l > sla, l <= sla && terms > oracleTerms(i))
			out.acct.AddOp()
			out.acct.Add("term", terms)
		}
		return out
	}
	reactive := eval(func(int) int { return reactiveV })
	proactive := eval(func(i int) int {
		lvl, ok := fsel.Select(core.Features{Key: crestFactor(f.signals[i]), Valid: true}, sla)
		if !ok {
			return reactiveV // selector declines: fall back to the global pick
		}
		return int(lvl)
	})
	reactive.addRow(t, "dft", "reactive", f.cost)
	proactive.addRow(t, "dft", "proactive", f.cost)
	reactiveName := "Base"
	if reactiveV != model.PreciseVersion {
		reactiveName = versions[reactiveV].name
	}
	t.AddNote("dft: SLA = %s (derived), feature = crest factor, %d train / %d test signals; reactive serves %s for every input",
		pct(sla), nTrain, len(f.signals)-nTrain, reactiveName)
	return nil
}

package experiments

import (
	"fmt"
	"math"

	"green/internal/approxmath"
	"green/internal/blackscholes"
	"green/internal/core"
	"green/internal/energy"
	"green/internal/model"
	"green/internal/workload"
)

func init() {
	register("fig8a", "blackscholes calibration: QoS loss of exp(3..6) vs input", runFig8a)
	register("fig8b", "blackscholes calibration: QoS loss of log(2..4) vs input", runFig8b)
	register("fig8c", "blackscholes: per-version QoS loss and performance improvement", runFig8c)
	register("fig23", "blackscholes versions: normalized execution time and energy", runFig23)
	register("fig24", "blackscholes versions: QoS loss", runFig24)
}

// bsFixture is the blackscholes setup: a training portfolio (the paper's
// 64K-option simulation set) and a larger native portfolio (10M options
// in the paper; scaled here).
type bsFixture struct {
	train  []workload.Option
	native []workload.Option
	cost   *energy.CostModel
}

// Per-call work in "term" units (polynomial-term equivalents). The
// non-transcendental remainder of pricing one option (CNDF polynomial,
// arithmetic, memory) is charged as bsBodyTerms, calibrated so the best
// combined approximation lands near the paper's ~28% improvement.
const (
	bsBodyTerms   = 150.0
	bsExpDegrees  = 4 // exp(3)..exp(6)
	bsLogDegrees  = 3 // log(2)..log(4)
	bsLocalSLA    = 0.01
	bsAppSLA      = 0.01
	bsExpBinWidth = 0.1
	bsLogBinWidth = 0.05
)

func newBSFixture(o Options) *bsFixture {
	return &bsFixture{
		train:  workload.Options(workload.Split(o.Seed, 600), o.scaled(6400, 400)),
		native: workload.Options(workload.Split(o.Seed, 601), o.scaled(20000, 800)),
		cost: &energy.CostModel{
			IdleWatts:   120,
			UnitSeconds: map[string]float64{"term": 1.2e-9},
			UnitJoules:  map[string]float64{"term": 1.5e-10},
		},
	}
}

// expVersions returns the Taylor exp implementations in increasing
// precision with their names and term costs.
func expVersions() (fns []core.Fn, names []string, work []float64) {
	for deg := 3; deg <= 6; deg++ {
		fns = append(fns, core.Fn(approxmath.ExpTaylor(deg)))
		names = append(names, fmt.Sprintf("e(%d)", deg))
		work = append(work, float64(approxmath.ExpTerms(deg)))
	}
	return fns, names, work
}

func logVersions() (fns []core.Fn, names []string, work []float64) {
	for deg := 2; deg <= 4; deg++ {
		fns = append(fns, core.Fn(approxmath.LogTaylor(deg)))
		names = append(names, fmt.Sprintf("lg(%d)", deg))
		work = append(work, float64(approxmath.LogTerms(deg)))
	}
	return fns, names, work
}

// calibrateExp builds the exp function model over the exp arguments the
// training portfolio actually generates (paper Figure 8(a)).
func (f *bsFixture) calibrateExp() (*model.FuncModel, error) {
	fns, names, work := expVersions()
	cal, err := core.NewFuncCalibration("exp", float64(approxmath.PreciseExpTerms),
		names, work, bsExpBinWidth)
	if err != nil {
		return nil, err
	}
	args := blackscholes.ObservedExpArgs(f.train)
	if err := cal.Calibrate(math.Exp, fns, args, nil); err != nil {
		return nil, err
	}
	return cal.Build()
}

func (f *bsFixture) calibrateLog() (*model.FuncModel, error) {
	fns, names, work := logVersions()
	cal, err := core.NewFuncCalibration("log", float64(approxmath.PreciseLogTerms),
		names, work, bsLogBinWidth)
	if err != nil {
		return nil, err
	}
	args := blackscholes.ObservedLogArgs(f.train)
	if err := cal.Calibrate(math.Log, fns, args, nil); err != nil {
		return nil, err
	}
	return cal.Build()
}

func runFig8a(o Options) (*Table, error) {
	f := newBSFixture(o)
	m, err := f.calibrateExp()
	if err != nil {
		return nil, err
	}
	// The paper's Figure 8(a) plots x in [-2, 0]; arguments beyond that
	// exist in the tail of the workload but the figure (and the useful
	// approximation region) is this window.
	t := versionCurveTable(m, "x (exp argument)", -2.05, 0.05)
	t.AddNote("arguments below -2 occur in the workload tail; there every Taylor version diverges and the model selects the precise function")
	return t, nil
}

func runFig8b(o Options) (*Table, error) {
	f := newBSFixture(o)
	m, err := f.calibrateLog()
	if err != nil {
		return nil, err
	}
	return versionCurveTable(m, "x (log argument)", 0.55, 1.55), nil
}

// versionCurveTable renders a FuncModel's per-version loss curves over a
// common grid restricted to [lo, hi] (the calibration-figure format of
// Figures 8a/8b).
func versionCurveTable(m *model.FuncModel, xLabel string, lo, hi float64) *Table {
	cols := []string{xLabel}
	for _, v := range m.Versions {
		cols = append(cols, v.Name)
	}
	t := &Table{Columns: cols}
	// Common grid: union of version sample xs, subsampled to ~12 rows.
	xs := map[float64]bool{}
	for _, v := range m.Versions {
		for _, s := range v.Samples {
			if s.X >= lo && s.X <= hi {
				xs[s.X] = true
			}
		}
	}
	grid := make([]float64, 0, len(xs))
	for x := range xs {
		grid = append(grid, x)
	}
	sortFloats(grid)
	stride := len(grid)/12 + 1
	for i := 0; i < len(grid); i += stride {
		row := []string{fmt.Sprintf("%.2f", grid[i])}
		for _, v := range m.Versions {
			row = append(row, pct(v.LossAt(grid[i])))
		}
		t.AddRow(row...)
	}
	return t
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// bsVersion is one evaluated blackscholes configuration: a choice of exp
// implementation and log implementation.
type bsVersion struct {
	name string
	exp  func(float64) float64
	log  func(float64) float64
	// expWork/logWork in term units per call; for combined (range-based)
	// versions the work is measured by the Func controller instead.
	expWork float64
	logWork float64
	// combined Func controllers (nil when a fixed version is used).
	expFunc *core.Func
	logFunc *core.Func
}

// price evaluates the portfolio under the version and returns the prices
// plus the total work in term units.
func (v *bsVersion) price(opts []workload.Option) ([]float64, float64, error) {
	if v.expFunc != nil {
		v.expFunc.WorkReset()
	}
	if v.logFunc != nil {
		v.logFunc.WorkReset()
	}
	fns := blackscholes.MathFns{Exp: v.exp, Log: v.log}
	prices, err := blackscholes.PricePortfolio(opts, fns)
	if err != nil {
		return nil, 0, err
	}
	n := float64(len(opts))
	work := bsBodyTerms * n
	if v.expFunc != nil {
		work += v.expFunc.Work()
	} else {
		work += v.expWork * blackscholes.ExpCallsPerOption * n
	}
	if v.logFunc != nil {
		work += v.logFunc.Work()
	} else {
		work += v.logWork * blackscholes.LogCallsPerOption * n
	}
	return prices, work, nil
}

// appLoss is the blackscholes application QoS: mean relative difference
// in option prices, with per-option loss saturating at 100% (a price that
// is completely wrong cannot be more than completely wrong; fixed Taylor
// versions evaluated outside their validity region would otherwise swamp
// the mean).
func appLoss(precise, approx []float64) float64 {
	sum := 0.0
	for i := range precise {
		denom := math.Abs(precise[i])
		if denom < 0.01 {
			denom = 0.01 // cents floor: deep out-of-the-money options
		}
		l := math.Abs(approx[i]-precise[i]) / denom
		if l > 1 {
			l = 1
		}
		sum += l
	}
	return sum / float64(len(precise))
}

// buildVersions constructs the Figure 8c / 23 / 24 version set.
func (f *bsFixture) buildVersions() ([]*bsVersion, *model.FuncModel, *model.FuncModel, error) {
	expM, err := f.calibrateExp()
	if err != nil {
		return nil, nil, nil, err
	}
	logM, err := f.calibrateLog()
	if err != nil {
		return nil, nil, nil, err
	}
	var versions []*bsVersion
	expFns, expNames, expWork := expVersions()
	for i := range expFns {
		versions = append(versions, &bsVersion{
			name: expNames[i], exp: expFns[i], log: math.Log,
			expWork: expWork[i], logWork: approxmath.PreciseLogTerms,
		})
	}
	mkExpCb := func() (*core.Func, error) {
		return core.NewFunc(core.FuncConfig{
			Name: "exp", Model: expM, SLA: bsLocalSLA,
		}, math.Exp, expFns)
	}
	expCb, err := mkExpCb()
	if err != nil {
		return nil, nil, nil, err
	}
	versions = append(versions, &bsVersion{
		name: "e(cb)", exp: expCb.Call, log: math.Log,
		expFunc: expCb, logWork: approxmath.PreciseLogTerms,
	})
	logFns, logNames, logWork := logVersions()
	for i := range logFns {
		versions = append(versions, &bsVersion{
			name: logNames[i], exp: math.Exp, log: logFns[i],
			expWork: approxmath.PreciseExpTerms, logWork: logWork[i],
		})
	}
	// Combined versions: e(cb) with each candidate log.
	for _, lg := range []struct {
		name string
		deg  int
	}{{"lg(2)", 2}, {"lg(4)", 4}} {
		cb, err := mkExpCb()
		if err != nil {
			return nil, nil, nil, err
		}
		versions = append(versions, &bsVersion{
			name: "e(cb)+" + lg.name, exp: cb.Call,
			log:     approxmath.LogTaylor(lg.deg),
			expFunc: cb, logWork: float64(approxmath.LogTerms(lg.deg)),
		})
	}
	return versions, expM, logM, nil
}

func runFig8c(o Options) (*Table, error) {
	f := newBSFixture(o)
	versions, expM, logM, err := f.buildVersions()
	if err != nil {
		return nil, err
	}
	precise := &bsVersion{name: "Base", exp: math.Exp, log: math.Log,
		expWork: approxmath.PreciseExpTerms, logWork: approxmath.PreciseLogTerms}
	basePrices, baseWork, err := precise.price(f.train)
	if err != nil {
		return nil, err
	}
	t := &Table{Columns: []string{"version", "QoS loss", "perf improvement"}}
	for _, v := range versions {
		prices, work, err := v.price(f.train)
		if err != nil {
			return nil, err
		}
		t.AddRow(v.name, pct(appLoss(basePrices, prices)), pct(baseWork/work-1))
	}
	// Report the exp(cb) range structure, mirroring Figure 7.
	for _, r := range expM.Ranges(bsLocalSLA) {
		t.AddNote("exp range [%.2f, %.2f): %s", r.Lo, r.Hi, expM.VersionName(r.Version))
	}
	_ = logM
	return t, nil
}

// chooseCombo runs the §3.4.1 combination search over exp/log candidates
// with measured application QoS on the training portfolio.
func (f *bsFixture) chooseCombo(versions []*bsVersion) (string, error) {
	basePrices, baseWork, err := (&bsVersion{exp: math.Exp, log: math.Log,
		expWork: approxmath.PreciseExpTerms,
		logWork: approxmath.PreciseLogTerms}).price(f.train)
	if err != nil {
		return "", err
	}
	byName := map[string]*bsVersion{}
	for _, v := range versions {
		byName[v.name] = v
	}
	expCands := []core.Setting{
		{Unit: 0, Label: "e(3)"}, {Unit: 0, Label: "e(4)"},
		{Unit: 0, Label: "e(cb)"}, {Unit: 0, Label: "precise-exp"},
	}
	logCands := []core.Setting{
		{Unit: 1, Label: "lg(2)"}, {Unit: 1, Label: "lg(3)"},
		{Unit: 1, Label: "lg(4)"}, {Unit: 1, Label: "precise-log"},
	}
	logFns, _, logWork := logVersions()
	eval := func(combo []core.Setting) (float64, float64, error) {
		v := &bsVersion{exp: math.Exp, log: math.Log,
			expWork: approxmath.PreciseExpTerms,
			logWork: approxmath.PreciseLogTerms}
		switch combo[0].Label {
		case "e(3)":
			v.exp, v.expWork = approxmath.ExpTaylor(3), float64(approxmath.ExpTerms(3))
		case "e(4)":
			v.exp, v.expWork = approxmath.ExpTaylor(4), float64(approxmath.ExpTerms(4))
		case "e(cb)":
			cb := byName["e(cb)"]
			v.exp, v.expFunc = cb.exp, cb.expFunc
		}
		switch combo[1].Label {
		case "lg(2)":
			v.log, v.logWork = logFns[0], logWork[0]
		case "lg(3)":
			v.log, v.logWork = logFns[1], logWork[1]
		case "lg(4)":
			v.log, v.logWork = logFns[2], logWork[2]
		}
		prices, work, err := v.price(f.train)
		if err != nil {
			return 0, 0, err
		}
		return appLoss(basePrices, prices), baseWork / work, nil
	}
	res, err := core.CombineSearch([][]core.Setting{expCands, logCands}, bsAppSLA, eval)
	if err != nil {
		return "", err
	}
	return res.Best[0].Label + "+" + res.Best[1].Label, nil
}

func runFig23(o Options) (*Table, error) {
	f := newBSFixture(o)
	versions, _, _, err := f.buildVersions()
	if err != nil {
		return nil, err
	}
	precise := &bsVersion{name: "Base", exp: math.Exp, log: math.Log,
		expWork: approxmath.PreciseExpTerms, logWork: approxmath.PreciseLogTerms}
	_, baseWork, err := precise.price(f.native)
	if err != nil {
		return nil, err
	}
	baseRep := f.report(baseWork, len(f.native))
	t := &Table{Columns: []string{"version", "norm. exec time", "norm. energy"}}
	for _, v := range versions {
		_, work, err := v.price(f.native)
		if err != nil {
			return nil, err
		}
		rep := f.report(work, len(f.native))
		t.AddRow(v.name, norm(rep.Seconds/baseRep.Seconds), norm(rep.Joules/baseRep.Joules))
	}
	t.AddRow("Base", "100.0", "100.0")
	combo, err := f.chooseCombo(versions)
	if err != nil {
		return nil, err
	}
	t.AddNote("combination search selected %s for the %.0f%% application SLA", combo, bsAppSLA*100)
	t.AddNote("native portfolio: %d options; training: %d options", len(f.native), len(f.train))
	return t, nil
}

func runFig24(o Options) (*Table, error) {
	f := newBSFixture(o)
	versions, _, _, err := f.buildVersions()
	if err != nil {
		return nil, err
	}
	basePrices, _, err := (&bsVersion{exp: math.Exp, log: math.Log,
		expWork: approxmath.PreciseExpTerms,
		logWork: approxmath.PreciseLogTerms}).price(f.native)
	if err != nil {
		return nil, err
	}
	t := &Table{Columns: []string{"version", "QoS loss"}}
	for _, v := range versions {
		prices, _, err := v.price(f.native)
		if err != nil {
			return nil, err
		}
		t.AddRow(v.name, pct(appLoss(basePrices, prices)))
	}
	t.AddRow("Base", pct(0))
	t.AddNote("QoS loss = mean relative difference in option prices vs base")
	return t, nil
}

// report converts a term-unit work total into a simulated report.
func (f *bsFixture) report(work float64, ops int) energy.Report {
	acct := energy.NewAccount()
	for i := 0; i < ops; i++ {
		acct.AddOp()
	}
	acct.Add("term", work)
	return f.cost.Evaluate(acct)
}

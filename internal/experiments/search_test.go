package experiments

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

// parsePct turns "12.34%" into 0.1234.
func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad percent cell %q: %v", s, err)
	}
	return v / 100
}

// parseNorm turns "85.3" into 0.853.
func parseNorm(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad normalized cell %q: %v", s, err)
	}
	return v / 100
}

var tinyOpts = Options{Seed: 42, Scale: 0.1}

func TestFig6Shape(t *testing.T) {
	tbl, err := Run("fig6", tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(calibrationKnots) {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), len(calibrationKnots))
	}
	// QoS loss non-increasing in M; throughput improvement non-increasing
	// in M; loss positive at 0.1N.
	prevLoss, prevImp := 2.0, 1e9
	for i, row := range tbl.Rows {
		loss := parsePct(t, row[1])
		imp := parsePct(t, row[2])
		if loss > prevLoss+1e-9 {
			t.Errorf("row %d: loss %v increased", i, loss)
		}
		if imp > prevImp+1e-9 {
			t.Errorf("row %d: improvement %v increased", i, imp)
		}
		prevLoss, prevImp = loss, imp
	}
	first := parsePct(t, tbl.Rows[0][1])
	if first <= 0 {
		t.Error("loss at 0.1N should be positive")
	}
	if imp := parsePct(t, tbl.Rows[0][2]); imp < 0.10 {
		t.Errorf("improvement at 0.1N = %v, want substantial", imp)
	}
}

func TestFig10And11Shape(t *testing.T) {
	t10, err := Run("fig10", tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	t11, err := Run("fig11", tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(t10.Rows) != 6 || len(t11.Rows) != 6 {
		t.Fatalf("rows = %d/%d, want 6", len(t10.Rows), len(t11.Rows))
	}
	// Base row is 100/100 with 0 loss.
	if t10.Rows[0][1] != "100.0" || t10.Rows[0][2] != "100.0" {
		t.Errorf("base row = %v", t10.Rows[0])
	}
	if l := parsePct(t, t11.Rows[0][1]); l != 0 {
		t.Errorf("base loss = %v", l)
	}
	// The M-* versions improve throughput and reduce energy, with
	// smaller M improving more; loss grows as M shrinks.
	var prevThr float64
	for i := 1; i <= 4; i++ { // M-10N .. M-N
		thr := parseNorm(t, t10.Rows[i][1])
		en := parseNorm(t, t10.Rows[i][2])
		if thr < 1.0 {
			t.Errorf("%s throughput %v below base", t10.Rows[i][0], thr)
		}
		if en > 1.0 {
			t.Errorf("%s energy %v above base", t10.Rows[i][0], en)
		}
		if i > 1 && thr+1e-9 < prevThr {
			t.Errorf("throughput not increasing as M shrinks at %s", t10.Rows[i][0])
		}
		prevThr = thr
	}
	lossM10 := parsePct(t, t11.Rows[1][1])
	lossM1 := parsePct(t, t11.Rows[4][1])
	if lossM1 < lossM10 {
		t.Errorf("loss at M-N (%v) below loss at M-10N (%v)", lossM1, lossM10)
	}
	// Adaptive version present and effective.
	thrPro := parseNorm(t, t10.Rows[5][1])
	if thrPro <= 1.0 {
		t.Errorf("M-PRO throughput %v not above base", thrPro)
	}
}

func TestFig12Shape(t *testing.T) {
	tbl, err := Run("fig12", tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Success rate per version must be non-increasing in offered load.
	cols := len(tbl.Columns)
	for c := 1; c < cols; c++ {
		prev := 2.0
		for _, row := range tbl.Rows {
			v := parsePct(t, row[c])
			if v > prev+1e-9 {
				t.Errorf("col %d: success rate increased with load", c)
			}
			prev = v
		}
	}
	// At 60% load everyone succeeds fully.
	for c := 1; c < cols; c++ {
		if v := parsePct(t, tbl.Rows[0][c]); v < 0.99 {
			t.Errorf("col %d at 60%% load: success %v", c, v)
		}
	}
	// Approximated versions should hold up at higher loads than base:
	// at 120% load, M-N's success rate must exceed base's.
	var load120 []string
	for _, row := range tbl.Rows {
		if row[0] == "120" {
			load120 = row
		}
	}
	if load120 == nil {
		t.Fatal("no 120% load row")
	}
	base := parsePct(t, load120[1])
	mn := parsePct(t, load120[5])
	if mn <= base {
		t.Errorf("at 120%% load, M-N success %v should beat base %v", mn, base)
	}
}

func TestFig13Shape(t *testing.T) {
	tbl, err := Run("fig13", tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 3 {
		t.Fatal("too few rows")
	}
	// Last row compares the largest set with itself: zero difference.
	last := tbl.Rows[len(tbl.Rows)-1]
	if d := parsePct(t, last[2]); d != 0 {
		t.Errorf("self-difference = %v", d)
	}
	// All differences should be small (robust model).
	for _, row := range tbl.Rows {
		if d := parsePct(t, row[2]); d > 0.05 {
			t.Errorf("training size %s: estimate differs by %v", row[0], d)
		}
	}
}

func TestFig14Converges(t *testing.T) {
	tbl, err := Run("fig14", tinyOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("no trace rows")
	}
	// M must be non-decreasing over the trace and end above its start.
	first, err1 := strconv.ParseFloat(tbl.Rows[0][1], 64)
	lastRow := tbl.Rows[len(tbl.Rows)-1]
	last, err2 := strconv.ParseFloat(lastRow[1], 64)
	if err1 != nil || err2 != nil {
		t.Fatalf("bad M cells: %v %v", err1, err2)
	}
	if last <= first {
		t.Errorf("M did not grow: %v -> %v", first, last)
	}
	foundConverged := false
	for _, n := range tbl.Notes {
		if strings.Contains(n, "first met") {
			foundConverged = true
		}
	}
	if !foundConverged {
		t.Errorf("recalibration did not converge; notes: %v", tbl.Notes)
	}
	// Window losses must broadly decrease: the first window is far above
	// the SLA, the last near or below it.
	firstLoss := parsePct(t, tbl.Rows[0][2])
	lastLoss := parsePct(t, tbl.Rows[len(tbl.Rows)-1][2])
	if firstLoss < 0.10 {
		t.Errorf("first window loss %v suspiciously low for M=0.1N", firstLoss)
	}
	if lastLoss > 0.06 {
		t.Errorf("final window loss %v did not approach the 2%% SLA", lastLoss)
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("nope", tinyOpts); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestIDsRegistered(t *testing.T) {
	ids := IDs()
	want := []string{"fig10", "fig11", "fig12", "fig13", "fig14", "fig6"}
	for _, w := range want {
		found := false
		for _, id := range ids {
			if id == w {
				found = true
			}
		}
		if !found {
			t.Errorf("id %s not registered", w)
		}
	}
	if Title("fig6") == "" {
		t.Error("fig6 has no title")
	}
}

func TestTableString(t *testing.T) {
	tbl := &Table{ID: "x", Title: "demo", Columns: []string{"a", "b"}}
	tbl.AddRow("1", "2")
	tbl.AddNote("hello %d", 7)
	s := tbl.String()
	for _, want := range []string{"demo", "a", "1", "hello 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
}

// The calibration phase's worker fan-out must not change the built model:
// AddRunsParallel merges measurements in input order, so any worker count
// yields the bit-identical model.
func TestCalibrationWorkersProduceIdenticalModel(t *testing.T) {
	f, err := newSearchFixture(Options{Seed: 7, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	queries := f.calQueries[:120]
	serial, err := f.buildLoopModel(queries)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5} {
		f.workers = workers
		m, err := f.buildLoopModel(queries)
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("workers=%d model differs from serial:\n got %s\nwant %s", workers, got, want)
		}
	}
}

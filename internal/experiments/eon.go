package experiments

import (
	"fmt"
	"math"

	"green/internal/core"
	"green/internal/energy"
	"green/internal/metrics"
	"green/internal/model"
	"green/internal/raytracer"
	"green/internal/workload"
)

func init() {
	register("fig15", "252.eon versions: normalized execution time and energy", runFig15)
	register("fig16", "252.eon versions: QoS loss", runFig16)
	register("fig17", "252.eon QoS-model sensitivity to training-set size", runFig17)
}

// eonFixture is the shared path-tracer setup: one reference scene, many
// random-camera inputs, and a desktop-machine cost model.
type eonFixture struct {
	scene   *raytracer.Scene
	cameras []raytracer.Camera
	seeds   []int64
	w, h    int
	baseN   int // base version sends baseN^2 samples per pixel
	cost    *energy.CostModel
}

// eonVersionNs lists the approximated versions of Figures 15/16: the main
// loop is capped at N^2 ray passes for N = 5..9; the base uses 10^2.
var eonVersionNs = []int{5, 6, 7, 8, 9}

const eonBaseN = 10

func newEonFixture(o Options) *eonFixture {
	nInputs := o.scaled(100, 4)
	f := &eonFixture{
		scene: raytracer.NewScene(workload.Split(o.Seed, 200)),
		w:     16, h: 12,
		baseN: eonBaseN,
		// Desktop machine: 120 W idle, 1.5 microseconds of CPU per ray,
		// small fixed per-frame setup cost.
		cost: &energy.CostModel{
			IdleWatts:    120,
			FixedSeconds: 0.002,
			FixedJoules:  0.05,
			UnitSeconds:  map[string]float64{"ray": 1.5e-6},
			UnitJoules:   map[string]float64{"ray": 1.2e-4},
		},
	}
	for i := 0; i < nInputs; i++ {
		f.cameras = append(f.cameras, raytracer.RandomCamera(workload.Split(o.Seed, 201+int64(i))))
		f.seeds = append(f.seeds, workload.Split(o.Seed, 301+int64(i)))
	}
	return f
}

// renderInput renders input i at the given pass count, returning the
// image and the rays traced.
func (f *eonFixture) renderInput(i, passes int) (*raytracer.Image, int64, error) {
	return raytracer.Render(f.scene, f.cameras[i], f.w, f.h, passes, f.seeds[i])
}

// eonRun renders every input at the version's pass budget and returns the
// mean QoS loss versus the base images and the simulated report.
func (f *eonFixture) eonRun(passes int, baseImages []*raytracer.Image) (float64, energy.Report, error) {
	acct := energy.NewAccount()
	lossSum := 0.0
	for i := range f.cameras {
		img, rays, err := f.renderInput(i, passes)
		if err != nil {
			return 0, energy.Report{}, err
		}
		acct.AddOp()
		acct.Add("ray", float64(rays))
		if baseImages != nil {
			d, err := metrics.PixelDiff(baseImages[i].Pix, img.Pix)
			if err != nil {
				return 0, energy.Report{}, err
			}
			lossSum += d
		}
	}
	return lossSum / float64(len(f.cameras)), f.cost.Evaluate(acct), nil
}

// baseImages renders the precise version of every input once.
func (f *eonFixture) baseImages() ([]*raytracer.Image, energy.Report, error) {
	acct := energy.NewAccount()
	imgs := make([]*raytracer.Image, len(f.cameras))
	for i := range f.cameras {
		img, rays, err := f.renderInput(i, f.baseN*f.baseN)
		if err != nil {
			return nil, energy.Report{}, err
		}
		imgs[i] = img
		acct.AddOp()
		acct.Add("ray", float64(rays))
	}
	return imgs, f.cost.Evaluate(acct), nil
}

func runFig15(o Options) (*Table, error) {
	f := newEonFixture(o)
	base, baseRep, err := f.baseImages()
	if err != nil {
		return nil, err
	}
	_ = base
	t := &Table{Columns: []string{"version", "norm. exec time", "norm. energy"}}
	for _, n := range eonVersionNs {
		_, rep, err := f.eonRun(n*n, nil)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("N=%d", n),
			norm(rep.Seconds/baseRep.Seconds),
			norm(rep.Joules/baseRep.Joules))
	}
	t.AddRow("Base", "100.0", "100.0")
	t.AddNote("base sends %d^2 = %d samples per pixel; N=k sends k^2", f.baseN, f.baseN*f.baseN)
	t.AddNote("%d random-camera inputs at %dx%d", len(f.cameras), f.w, f.h)
	return t, nil
}

func runFig16(o Options) (*Table, error) {
	f := newEonFixture(o)
	base, _, err := f.baseImages()
	if err != nil {
		return nil, err
	}
	t := &Table{Columns: []string{"version", "QoS loss"}}
	for _, n := range eonVersionNs {
		loss, _, err := f.eonRun(n*n, base)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("N=%d", n), pct(loss))
	}
	t.AddRow("Base", pct(0))
	t.AddNote("QoS loss = mean normalized pixel difference vs the base rendering")
	return t, nil
}

// eonLoopModel builds the pass-loop QoS model from the first nTrain
// inputs (calibration phase).
func (f *eonFixture) eonLoopModel(nTrain int) (*model.LoopModel, error) {
	knots := make([]float64, len(eonVersionNs))
	for i, n := range eonVersionNs {
		knots[i] = float64(n * n)
	}
	baseLevel := float64(f.baseN * f.baseN)
	raysPerPass := float64(f.w * f.h * 3) // approximate mean incl. bounces
	cal, err := core.NewLoopCalibration("eon.passes", knots, baseLevel, baseLevel*raysPerPass)
	if err != nil {
		return nil, err
	}
	losses := make([]float64, len(knots))
	works := make([]float64, len(knots))
	for i := 0; i < nTrain && i < len(f.cameras); i++ {
		baseImg, _, err := f.renderInput(i, f.baseN*f.baseN)
		if err != nil {
			return nil, err
		}
		// Incremental renderer gives all knots in one pass sweep.
		r, err := raytracer.NewRenderer(f.scene, f.cameras[i], f.w, f.h, f.seeds[i])
		if err != nil {
			return nil, err
		}
		for k, knot := range knots {
			for r.Passes() < int(knot) {
				r.Pass()
			}
			d, err := metrics.PixelDiff(baseImg.Pix, r.Snapshot().Pix)
			if err != nil {
				return nil, err
			}
			losses[k] = d
			works[k] = float64(r.Rays())
		}
		if err := cal.AddRun(losses, works); err != nil {
			return nil, err
		}
	}
	return cal.Build()
}

func runFig17(o Options) (*Table, error) {
	f := newEonFixture(o)
	total := len(f.cameras)
	sizes := []int{
		max(2, total/10), max(3, total/5), max(4, total/2), total,
	}
	level := float64(9 * 9) // the paper estimates at N=9
	ests := make([]float64, len(sizes))
	for i, n := range sizes {
		m, err := f.eonLoopModel(n)
		if err != nil {
			return nil, err
		}
		ests[i] = m.PredictLoss(level)
	}
	ref := ests[len(ests)-1]
	t := &Table{Columns: []string{"training inputs", "estimated QoS loss at N=9", "difference vs largest"}}
	for i, n := range sizes {
		t.AddRow(fmt.Sprintf("%d", n), pct(ests[i]), pct(math.Abs(ests[i]-ref)))
	}
	t.AddNote("paper: 10 vs 100 training inputs differ by only 0.12%%")
	return t, nil
}

package experiments

import (
	"fmt"

	"green/internal/approxmath"
	"green/internal/dft"
	"green/internal/energy"
	"green/internal/metrics"
	"green/internal/workload"
)

func init() {
	register("fig21", "DFT versions: normalized execution time and energy", runFig21)
	register("fig22", "DFT versions: QoS loss", runFig22)
}

// dftFixture holds the DFT experiment setup: 100 random signals and the
// desktop cost model. One (k, t) sample-pair of the O(N^2) transform
// costs dftBodyTerms term-equivalents of non-trigonometric work plus the
// selected grades' polynomial terms for one cos and one sin.
type dftFixture struct {
	signals [][]float64
	n       int
	cost    *energy.CostModel
}

const dftBodyTerms = 77.0

func newDFTFixture(o Options) *dftFixture {
	nSignals := o.scaled(100, 6)
	f := &dftFixture{
		n: 96,
		cost: &energy.CostModel{
			IdleWatts:    120,
			FixedSeconds: 1e-4,
			FixedJoules:  0.002,
			UnitSeconds:  map[string]float64{"term": 2e-9},
			UnitJoules:   map[string]float64{"term": 2.5e-10},
		},
	}
	for i := 0; i < nSignals; i++ {
		f.signals = append(f.signals, workload.Signal(workload.Split(o.Seed, 700+int64(i)), f.n))
	}
	return f
}

// dftVersion selects the trig grades: cosGrade always approximated in
// C(d) versions; sinGrade equals TrigPrecise for C(d) and cosGrade for
// C+S(d).
type dftVersion struct {
	name     string
	cosGrade approxmath.TrigGrade
	sinGrade approxmath.TrigGrade
}

// dftVersionSet is the Figure 21/22 sweep: C(d) and C+S(d) for every
// grade.
func dftVersionSet() []dftVersion {
	var out []dftVersion
	for _, g := range approxmath.TrigGrades {
		out = append(out, dftVersion{
			name: fmt.Sprintf("C(%s)", g), cosGrade: g, sinGrade: approxmath.TrigPrecise,
		})
	}
	for _, g := range approxmath.TrigGrades {
		out = append(out, dftVersion{
			name: fmt.Sprintf("C+S(%s)", g), cosGrade: g, sinGrade: g,
		})
	}
	return out
}

// run transforms every signal under the version, returning mean QoS loss
// against precise spectra and the simulated report.
func (f *dftFixture) run(v dftVersion, preciseRe, preciseIm [][]float64) (float64, energy.Report, error) {
	trig := dft.Trig{
		Sin: approxmath.SinFn(v.sinGrade),
		Cos: approxmath.CosFn(v.cosGrade),
	}
	termsPerPair := float64(v.cosGrade.Terms()+v.sinGrade.Terms()) + dftBodyTerms
	acct := energy.NewAccount()
	lossSum := 0.0
	for i, sig := range f.signals {
		re, im, err := dft.Transform(sig, trig)
		if err != nil {
			return 0, energy.Report{}, err
		}
		acct.AddOp()
		acct.Add("term", termsPerPair*float64(f.n)*float64(f.n))
		if preciseRe != nil {
			lr, err := metrics.RMSNormDiff(preciseRe[i], re)
			if err != nil {
				return 0, energy.Report{}, err
			}
			li, err := metrics.RMSNormDiff(preciseIm[i], im)
			if err != nil {
				return 0, energy.Report{}, err
			}
			lossSum += (lr + li) / 2
		}
	}
	return lossSum / float64(len(f.signals)), f.cost.Evaluate(acct), nil
}

// precise computes the base spectra and report.
func (f *dftFixture) precise() ([][]float64, [][]float64, energy.Report, error) {
	re := make([][]float64, len(f.signals))
	im := make([][]float64, len(f.signals))
	termsPerPair := float64(2*approxmath.TrigPrecise.Terms()) + dftBodyTerms
	acct := energy.NewAccount()
	for i, sig := range f.signals {
		r, m, err := dft.Transform(sig, dft.PreciseTrig())
		if err != nil {
			return nil, nil, energy.Report{}, err
		}
		re[i], im[i] = r, m
		acct.AddOp()
		acct.Add("term", termsPerPair*float64(f.n)*float64(f.n))
	}
	return re, im, f.cost.Evaluate(acct), nil
}

func runFig21(o Options) (*Table, error) {
	f := newDFTFixture(o)
	_, _, baseRep, err := f.precise()
	if err != nil {
		return nil, err
	}
	t := &Table{Columns: []string{"version", "norm. exec time", "norm. energy"}}
	for _, v := range dftVersionSet() {
		_, rep, err := f.run(v, nil, nil)
		if err != nil {
			return nil, err
		}
		t.AddRow(v.name, norm(rep.Seconds/baseRep.Seconds), norm(rep.Joules/baseRep.Joules))
	}
	t.AddRow("Base", "100.0", "100.0")
	t.AddNote("%d random signals of %d samples; base trig accuracy 23.1 digits (library)",
		len(f.signals), f.n)
	return t, nil
}

func runFig22(o Options) (*Table, error) {
	f := newDFTFixture(o)
	re, im, _, err := f.precise()
	if err != nil {
		return nil, err
	}
	t := &Table{Columns: []string{"version", "QoS loss"}}
	for _, v := range dftVersionSet() {
		loss, _, err := f.run(v, re, im)
		if err != nil {
			return nil, err
		}
		t.AddRow(v.name, pct(loss))
	}
	t.AddRow("Base", pct(0))
	t.AddNote("QoS loss = mean normalized difference of output spectra vs base")
	return t, nil
}

package experiments

import (
	"fmt"
	"math"
	"time"

	"green/internal/core"
	"green/internal/model"
	"green/internal/workload"
)

func init() {
	register("overhead", "Green runtime overhead with approximation forced off (§4.1)", runOverhead)
	register("backoff", "global recalibration under non-linear interaction (§3.4.2)", runBackoff)
}

// runOverhead reproduces the §4.1 measurement: with every QoS_Approx call
// answering "do not approximate" and a 1% recalibration sampling rate,
// the Green-instrumented loop should be indistinguishable from the plain
// loop. It measures real wall time of both variants over identical work.
func runOverhead(o Options) (*Table, error) {
	const base = 2000
	iterations := o.scaled(300, 30)

	// The measured body: a numeric kernel of realistic weight — Green
	// targets *expensive* loops, where the per-iteration decision check
	// is negligible relative to the body.
	body := func(i int, acc float64) float64 {
		x := float64(i%97)*1e-3 + 1.1
		for k := 0; k < 8; k++ {
			x = math.Sqrt(x*x + acc*1e-9 + float64(k))
		}
		return acc + x
	}

	// Plain version.
	plainStart := time.Now() //greenlint:ignore nondet the experiment's purpose is measuring real wall-clock overhead
	sinkPlain := 0.0
	for run := 0; run < iterations; run++ {
		for i := 0; i < base; i++ {
			sinkPlain = body(i, sinkPlain)
		}
	}
	plain := time.Since(plainStart) //greenlint:ignore nondet the experiment's purpose is measuring real wall-clock overhead

	// Green-instrumented version, approximation disabled, Sample_QoS 1%.
	pts := []model.CalPoint{
		{Level: base / 4, QoSLoss: 0.1, Work: base / 4},
		{Level: base / 2, QoSLoss: 0.01, Work: base / 2},
	}
	m, err := model.BuildLoopModel("overhead", pts, base, base)
	if err != nil {
		return nil, err
	}
	loop, err := core.NewLoop(core.LoopConfig{
		Name: "overhead", Model: m, SLA: 0.02,
		SampleInterval: 100, Disabled: true,
	})
	if err != nil {
		return nil, err
	}
	greenStart := time.Now() //greenlint:ignore nondet the experiment's purpose is measuring real wall-clock overhead
	sinkGreen := 0.0
	for run := 0; run < iterations; run++ {
		exec, err := loop.Begin(noopQoS{})
		if err != nil {
			return nil, err
		}
		i := 0
		for ; i < base && exec.Continue(i); i++ {
			sinkGreen = body(i, sinkGreen)
		}
		exec.Finish(i)
	}
	green := time.Since(greenStart) //greenlint:ignore nondet the experiment's purpose is measuring real wall-clock overhead

	if sinkPlain != sinkGreen {
		//greenlint:endorse divergence check: the approximate sum is intentionally compared and reported against the precise baseline
		return nil, fmt.Errorf("overhead experiment diverged: %v vs %v", sinkPlain, sinkGreen)
	}
	ratio := float64(green) / float64(plain)
	t := &Table{Columns: []string{"variant", "wall time", "relative"}}
	t.AddRow("plain loop", plain.Round(time.Microsecond).String(), "1.000")
	t.AddRow("green (approx off, 1% sampling)", green.Round(time.Microsecond).String(),
		fmt.Sprintf("%.3f", ratio))
	t.AddNote("paper: performance indistinguishable from base at 1%% sampling")
	t.AddNote("%d runs of a %d-iteration kernel; identical results verified", iterations, base)
	return t, nil
}

// noopQoS is a trivial LoopQoS for the disabled-approximation loop.
type noopQoS struct{}

func (noopQoS) Record(int)        {}
func (noopQoS) Loss(int) float64  { return 0 }
func (noopQoS) Delta(int) float64 { return 0 }

// runBackoff reproduces the §3.4.2 validation: the paper could not force
// non-linear interaction in its benchmarks, so it constructed artificial
// examples — as we do here. Two approximated loops contribute additive
// QoS loss individually, but when both are very approximate at once the
// combined loss explodes (superadditive interaction). Global
// recalibration must escalate through randomized exponential backoff and
// converge to a configuration meeting the application SLA.
func runBackoff(o Options) (*Table, error) {
	const appSLA = 0.02
	mk := func(name string, seed int64) (*core.Loop, error) {
		pts := []model.CalPoint{
			{Level: 100, QoSLoss: 0.020, Work: 100},
			{Level: 200, QoSLoss: 0.010, Work: 200},
			{Level: 400, QoSLoss: 0.005, Work: 400},
			{Level: 800, QoSLoss: 0.002, Work: 800},
		}
		m, err := model.BuildLoopModel(name, pts, 1600, 1600)
		if err != nil {
			return nil, err
		}
		return core.NewLoop(core.LoopConfig{Name: name, Model: m, SLA: 0.02, Step: 100})
	}
	l1, err := mk("unit1", 1)
	if err != nil {
		return nil, err
	}
	l2, err := mk("unit2", 2)
	if err != nil {
		return nil, err
	}
	app, err := core.NewApp(core.AppConfig{
		Name: "synthetic", SLA: appSLA, Seed: workload.Split(o.Seed, 800),
		BackoffThreshold: 2, MaxBackoffRounds: 8,
	})
	if err != nil {
		return nil, err
	}
	app.Register(l1)
	app.Register(l2)

	// Ground truth: per-unit loss follows the model curve; the
	// interaction quadruples the loss when both levels are low.
	measured := func() float64 {
		loss := 0.0
		for _, l := range []*core.Loop{l1, l2} {
			if l.ApproxEnabled() {
				loss += lossAtLevel(l.Level())
			}
		}
		if l1.ApproxEnabled() && l2.ApproxEnabled() &&
			l1.Level() < 250 && l2.Level() < 250 {
			loss *= 4 // the constructed non-linear effect
		}
		return loss
	}

	t := &Table{Columns: []string{"observation", "unit1 M", "unit2 M", "measured app QoS loss", "backoff round"}}
	converged := -1
	for obs := 1; obs <= 40; obs++ {
		loss := measured()
		t.AddRow(fmt.Sprintf("%d", obs),
			fmt.Sprintf("%.0f", l1.Level()), fmt.Sprintf("%.0f", l2.Level()),
			pct(loss), fmt.Sprintf("%d", app.BackoffRound()))
		if loss <= appSLA {
			converged = obs
			break
		}
		app.ObserveAppQoS(loss)
	}
	if converged > 0 {
		t.AddNote("converged to the %.0f%% application SLA after %d observations", appSLA*100, converged)
	} else {
		t.AddNote("did not converge in 40 observations (approximation disabled: %v)", app.AllDisabled())
	}
	return t, nil
}

// lossAtLevel is the synthetic per-unit loss curve used by runBackoff.
func lossAtLevel(level float64) float64 {
	return math.Min(0.04, 2.0/level)
}

package experiments

import (
	"fmt"
	"math"

	"green/internal/core"
	"green/internal/energy"
	"green/internal/metrics"
	"green/internal/model"
	"green/internal/search"
	"green/internal/workload"
)

func init() {
	register("fig6", "Bing Search calibration: QoS loss and throughput improvement vs M", runFig6)
	register("fig10", "Bing Search versions: normalized throughput and energy", runFig10)
	register("fig11", "Bing Search versions: QoS loss", runFig11)
	register("fig12", "Bing Search: success rate vs offered load (cutoff QPS)", runFig12)
	register("fig13", "Bing Search QoS-model sensitivity to training-set size", runFig13)
	register("fig14", "Bing Search re-calibration with an imperfect QoS model", runFig14)
}

// searchFixture is the shared Bing-Search-substrate setup.
type searchFixture struct {
	engine     *search.Engine
	calQueries []search.Query
	tstQueries []search.Query
	// refN is the paper's "N" unit: the reference document-processing
	// budget that the M-*N versions are multiples of.
	refN int
	topN int
	cost *energy.CostModel
	// workers parallelizes the calibration phase's training queries.
	workers int
}

const searchTopN = 10

func newSearchFixture(o Options) (*searchFixture, error) {
	eng, err := search.NewEngine(search.Config{
		Docs: 20000, VocabSize: 2000, AvgDocLen: 60,
		Seed: workload.Split(o.Seed, 100),
	})
	if err != nil {
		return nil, err
	}
	cal, err := eng.GenerateQueries(workload.Split(o.Seed, 101), o.scaled(2000, 200))
	if err != nil {
		return nil, err
	}
	tst, err := eng.GenerateQueries(workload.Split(o.Seed, 102), o.scaled(5000, 300))
	if err != nil {
		return nil, err
	}
	f := &searchFixture{
		engine: eng, calQueries: cal, tstQueries: tst,
		topN: searchTopN, workers: o.Workers,
	}

	// Derive the reference budget N from the calibration workload: a
	// third of the mean matching-document count, so that M-N removes a
	// substantial but not dominant share of the scan work (matching the
	// paper's ~20-25% throughput effect at M-N) while M-10N is nearly
	// precise.
	meanMatch := 0.0
	for _, q := range cal {
		meanMatch += float64(eng.MatchCount(q))
	}
	meanMatch /= float64(len(cal))
	f.refN = int(meanMatch / 3)
	if f.refN < 10 {
		f.refN = 10
	}

	// Simulated server cost model: 5 microseconds per document scored
	// plus a fixed per-query overhead (parse, dispatch, ranking of the
	// final page, snippet generation) worth 1.5x the mean scan — index
	// scanning is a substantial but not dominant share of query cost,
	// which is what bounds the paper's throughput improvements at ~60%
	// even for tiny M (Figure 6). 300 W idle draw and a small dynamic
	// energy per document.
	const usPerDoc = 5e-6
	f.cost = &energy.CostModel{
		IdleWatts:    300,
		FixedSeconds: 1.5 * meanMatch * usPerDoc,
		FixedJoules:  0.5,
		UnitSeconds:  map[string]float64{"doc": usPerDoc},
		UnitJoules:   map[string]float64{"doc": 8e-4},
	}
	return f, nil
}

// searchVersion identifies one evaluated configuration.
type searchVersion struct {
	name string
	// maxDocs > 0: static cap (M-*N). maxDocs == 0: precise base.
	maxDocs int
	// adaptivePeriod > 0: M-PRO adaptive termination with this period.
	adaptivePeriod int
}

// run executes one query under the version and returns the ranked top-N
// and the documents processed.
func (v searchVersion) run(e *search.Engine, q search.Query, topN int) ([]int, int) {
	if v.adaptivePeriod > 0 {
		s := e.NewScan(q, topN)
		var prev []int
		for {
			advanced := false
			for i := 0; i < v.adaptivePeriod; i++ {
				if !s.Step() {
					break
				}
				advanced = true
			}
			if !advanced {
				break
			}
			cur := s.TopN()
			if prev != nil && metrics.TopNExactMatch(prev, cur) {
				break // no QoS improvement in the current period
			}
			prev = cur
		}
		return s.TopN(), s.Processed()
	}
	return e.Search(q, topN, v.maxDocs)
}

// evaluate runs the version over the query set, comparing against
// precomputed precise results, and returns the QoS loss fraction and the
// simulated report.
func (f *searchFixture) evaluate(v searchVersion, queries []search.Query, precise [][]int) (float64, energy.Report) {
	acct := energy.NewAccount()
	bad := 0
	for i, q := range queries {
		top, processed := v.run(f.engine, q, f.topN)
		acct.AddOp()
		acct.Add("doc", float64(processed))
		if !metrics.TopNExactMatch(precise[i], top) {
			bad++
		}
	}
	return float64(bad) / float64(len(queries)), f.cost.Evaluate(acct)
}

// preciseResults precomputes base top-N per query.
func (f *searchFixture) preciseResults(queries []search.Query) [][]int {
	out := make([][]int, len(queries))
	for i, q := range queries {
		out[i], _ = f.engine.Search(q, f.topN, 0)
	}
	return out
}

// standardVersions returns the paper's Figure 10/11 version set.
func (f *searchFixture) standardVersions() []searchVersion {
	n := f.refN
	return []searchVersion{
		{name: "Base"},
		{name: "M-10N", maxDocs: 10 * n},
		{name: "M-5N", maxDocs: 5 * n},
		{name: "M-2N", maxDocs: 2 * n},
		{name: "M-N", maxDocs: n},
		{name: "M-PRO-0.5N", adaptivePeriod: n / 2},
	}
}

// calibrationKnots is the Figure 6 sweep of M in units of N.
var calibrationKnots = []float64{0.1, 0.25, 0.5, 1, 2, 4, 6, 8, 10}

// buildLoopModel runs the calibration phase over the given queries and
// returns the loop model for the matching-document loop.
func (f *searchFixture) buildLoopModel(queries []search.Query) (*model.LoopModel, error) {
	knots := make([]float64, len(calibrationKnots))
	for i, k := range calibrationKnots {
		knots[i] = math.Max(1, k*float64(f.refN))
	}
	baseLevel := float64(f.engine.Docs())
	cal, err := core.NewLoopCalibration("search.match", knots, baseLevel, baseLevel)
	if err != nil {
		return nil, err
	}
	// Training queries hit the engine's immutable index only, so they can
	// be measured concurrently; AddRunsParallel merges in query order, so
	// the model is identical for any worker count.
	err = cal.AddRunsParallel(f.workers, len(queries), func(i int) ([]float64, []float64, error) {
		q := queries[i]
		precise, _ := f.engine.Search(q, f.topN, 0)
		losses := make([]float64, len(knots))
		works := make([]float64, len(knots))
		for j, k := range knots {
			approx, processed := f.engine.Search(q, f.topN, int(k))
			losses[j] = metrics.QueryLoss(precise, approx)
			works[j] = float64(processed)
		}
		return losses, works, nil
	})
	if err != nil {
		return nil, err
	}
	return cal.Build()
}

func runFig6(o Options) (*Table, error) {
	f, err := newSearchFixture(o)
	if err != nil {
		return nil, err
	}
	m, err := f.buildLoopModel(f.calQueries)
	if err != nil {
		return nil, err
	}
	// Base work for throughput comparison: the precise scan.
	baseAcct := energy.NewAccount()
	for _, q := range f.calQueries {
		_, n := f.engine.Search(q, f.topN, 0)
		baseAcct.AddOp()
		baseAcct.Add("doc", float64(n))
	}
	base := f.cost.Evaluate(baseAcct)

	t := &Table{Columns: []string{"M", "QoS loss", "throughput improvement"}}
	for _, k := range calibrationKnots {
		level := math.Max(1, k*float64(f.refN))
		loss := m.PredictLoss(level)
		// Throughput at this cap from the calibrated work curve.
		perQueryDocs := m.PredictWork(level)
		acct := energy.NewAccount()
		for range f.calQueries {
			acct.AddOp()
			acct.Add("doc", perQueryDocs)
		}
		rep := f.cost.Evaluate(acct)
		imp := base.Seconds/rep.Seconds - 1
		t.AddRow(fmt.Sprintf("%.1fN", k), pct(loss), pct(imp))
	}
	t.AddNote("N = %d documents (derived from the calibration workload)", f.refN)
	t.AddNote("calibration queries = %d over a %d-document corpus",
		len(f.calQueries), f.engine.Docs())
	return t, nil
}

func runFig10(o Options) (*Table, error) {
	f, err := newSearchFixture(o)
	if err != nil {
		return nil, err
	}
	precise := f.preciseResults(f.tstQueries)
	var baseRep energy.Report
	t := &Table{Columns: []string{"version", "norm. throughput (QPS)", "norm. energy (J/query)"}}
	for i, v := range f.standardVersions() {
		_, rep := f.evaluate(v, f.tstQueries, precise)
		if i == 0 {
			baseRep = rep
		}
		t.AddRow(v.name,
			norm(rep.Throughput()/baseRep.Throughput()),
			norm(rep.JoulesPerOp()/baseRep.JoulesPerOp()))
	}
	t.AddNote("base = 100; N = %d; test queries = %d", f.refN, len(f.tstQueries))
	return t, nil
}

func runFig11(o Options) (*Table, error) {
	f, err := newSearchFixture(o)
	if err != nil {
		return nil, err
	}
	precise := f.preciseResults(f.tstQueries)
	t := &Table{Columns: []string{"version", "QoS loss"}}
	for _, v := range f.standardVersions() {
		loss, _ := f.evaluate(v, f.tstQueries, precise)
		t.AddRow(v.name, pct(loss))
	}
	t.AddNote("QoS loss = fraction of queries whose top-%d set or order changed", f.topN)
	return t, nil
}

// runFig12 sweeps offered load and measures the success rate (fraction of
// queries finishing within a deadline) per version with a FIFO
// single-server queue fed at a deterministic rate — the cutoff-QPS
// methodology of the paper's Figure 12.
func runFig12(o Options) (*Table, error) {
	f, err := newSearchFixture(o)
	if err != nil {
		return nil, err
	}
	// Per-query service times per version.
	versions := f.standardVersions()
	serviceTimes := make([][]float64, len(versions))
	for vi, v := range versions {
		times := make([]float64, len(f.tstQueries))
		for i, q := range f.tstQueries {
			_, processed := v.run(f.engine, q, f.topN)
			acct := energy.NewAccount()
			acct.AddOp()
			acct.Add("doc", float64(processed))
			times[i] = f.cost.Evaluate(acct).Seconds
		}
		serviceTimes[vi] = times
	}
	// Base capacity and deadline.
	meanBase := 0.0
	for _, s := range serviceTimes[0] {
		meanBase += s
	}
	meanBase /= float64(len(serviceTimes[0]))
	baseCapacity := 1 / meanBase
	deadline := 4 * meanBase

	cols := []string{"offered QPS (% of base capacity)"}
	for _, v := range versions {
		cols = append(cols, v.name)
	}
	t := &Table{Columns: cols}
	cutoff := make([]float64, len(versions))
	for _, loadPct := range []float64{60, 80, 90, 100, 110, 120, 130, 140, 150} {
		rate := baseCapacity * loadPct / 100
		interval := 1 / rate
		row := []string{fmt.Sprintf("%.0f", loadPct)}
		for vi := range versions {
			ok := 0
			clock := 0.0
			free := 0.0
			for i, s := range serviceTimes[vi] {
				arrive := float64(i) * interval
				if arrive > free {
					free = arrive
				}
				finish := free + s
				free = finish
				if finish-arrive <= deadline {
					ok++
				}
				clock = arrive
			}
			_ = clock
			rate := float64(ok) / float64(len(serviceTimes[vi]))
			row = append(row, pct(rate))
			if rate >= 0.998 && loadPct > cutoff[vi] { // 100-4d line analog
				cutoff[vi] = loadPct
			}
		}
		t.AddRow(row...)
	}
	for vi, v := range versions {
		t.AddNote("cutoff QPS of %s ~= %.0f%% of base capacity", v.name, cutoff[vi])
	}
	return t, nil
}

func runFig13(o Options) (*Table, error) {
	f, err := newSearchFixture(o)
	if err != nil {
		return nil, err
	}
	sizes := []int{o.scaled(250, 25), o.scaled(500, 50), o.scaled(1000, 100),
		o.scaled(2000, 150), len(f.calQueries)}
	// Deduplicate (a scaled size can coincide with the full set).
	uniq := sizes[:0]
	for _, n := range sizes {
		if len(uniq) == 0 || uniq[len(uniq)-1] != min(n, len(f.calQueries)) {
			uniq = append(uniq, min(n, len(f.calQueries)))
		}
	}
	sizes = uniq
	level := float64(f.refN) // estimate at M = N, as the paper does
	var ref float64
	ests := make([]float64, len(sizes))
	for i, n := range sizes {
		if n > len(f.calQueries) {
			n = len(f.calQueries)
		}
		m, err := f.buildLoopModel(f.calQueries[:n])
		if err != nil {
			return nil, err
		}
		ests[i] = m.PredictLoss(level)
	}
	ref = ests[len(ests)-1]
	t := &Table{Columns: []string{"training queries", "estimated QoS loss at M=N", "difference vs largest"}}
	for i, n := range sizes {
		t.AddRow(fmt.Sprintf("%d", n), pct(ests[i]), pct(math.Abs(ests[i]-ref)))
	}
	t.AddNote("the model stabilizes with small training sets (paper: 10K vs 250K differ by 0.1%%)")
	return t, nil
}

// runFig14 reproduces the imperfect-model recovery experiment: the model
// wrongly supplies M = 0.1N for a 2%% SLA; windowed recalibration raises
// M by 0.1N per low-QoS window until the target is met.
func runFig14(o Options) (*Table, error) {
	f, err := newSearchFixture(o)
	if err != nil {
		return nil, err
	}
	m, err := f.buildLoopModel(f.calQueries)
	if err != nil {
		return nil, err
	}
	const sla = 0.02
	windowSize := 100
	sampleInterval := o.scaled(1000, 200) // monitor a window every this many queries
	step := 0.1 * float64(f.refN)
	rec := &windowRecorder{
		inner:  &core.WindowedPolicy{Window: windowSize, BaseInterval: sampleInterval},
		window: windowSize,
	}
	loop, err := core.NewLoop(core.LoopConfig{
		Name: "search.match", Model: m, SLA: sla,
		SampleInterval: sampleInterval,
		Policy:         rec,
		Step:           step,
		MinLevel:       1,
	})
	if err != nil {
		return nil, err
	}
	loop.SetLevel(0.1 * float64(f.refN)) // the imperfect model's answer

	t := &Table{Columns: []string{"queries processed", "M (xN)", "monitored window QoS loss"}}
	queries := f.tstQueries
	total := 0
	maxQueries := 60 * sampleInterval
	converged := -1
	reportedWindows := 0
	for total < maxQueries {
		q := queries[total%len(queries)]
		exec, err := loop.Begin(&searchLoopQoS{engine: f.engine, query: q, topN: f.topN})
		if err != nil {
			return nil, err
		}
		s := f.engine.NewScan(q, f.topN)
		i := 0
		for exec.Continue(i) && s.Step() {
			i++
		}
		exec.Finish(i)
		total++
		if len(rec.closes) > reportedWindows {
			reportedWindows = len(rec.closes)
			winLoss := rec.closes[reportedWindows-1]
			t.AddRow(fmt.Sprintf("%d", total),
				fmt.Sprintf("%.1f", loop.Level()/float64(f.refN)),
				pct(winLoss))
			if converged < 0 && winLoss <= sla {
				converged = total
			}
		}
	}
	if converged >= 0 {
		t.AddNote("a monitored window first met the 2%% SLA after %d queries (final M = %.1fN)",
			converged, loop.Level()/float64(f.refN))
	} else {
		t.AddNote("did not converge within %d queries (M = %.1fN)", total,
			loop.Level()/float64(f.refN))
	}
	t.AddNote("SLA = 2%%; imperfect model supplied M = 0.1N; each low-QoS window raises M by 0.1N")
	return t, nil
}

// windowRecorder wraps the windowed Bing policy and records the aggregate
// loss of every completed monitoring window, for the Figure 14 trace.
type windowRecorder struct {
	inner  *core.WindowedPolicy
	window int
	nm, nl int
	closes []float64
}

func (w *windowRecorder) Observe(loss, sla float64) core.Decision {
	w.nm++
	if loss != 0 {
		w.nl++
	}
	d := w.inner.Observe(loss, sla)
	if w.nm == w.window {
		w.closes = append(w.closes, float64(w.nl)/float64(w.nm))
		w.nm, w.nl = 0, 0
	}
	return d
}

// searchLoopQoS adapts one query's matching-document loop to the Green
// LoopQoS interface: Record snapshots the top-N the approximation would
// return; Loss compares it against the full scan's top-N.
type searchLoopQoS struct {
	engine   *search.Engine
	query    search.Query
	topN     int
	recorded []int
}

func (s *searchLoopQoS) Record(iter int) {
	top, _ := s.engine.Search(s.query, s.topN, iter)
	s.recorded = append(s.recorded[:0], top...)
}

func (s *searchLoopQoS) Loss(int) float64 {
	precise, _ := s.engine.Search(s.query, s.topN, 0)
	if s.recorded == nil {
		return 0
	}
	return metrics.QueryLoss(precise, s.recorded)
}

package experiments

import (
	"fmt"
	"math"

	"green/internal/cga"
	"green/internal/core"
	"green/internal/energy"
	"green/internal/metrics"
	"green/internal/model"
	"green/internal/taskgraph"
	"green/internal/workload"
)

func init() {
	register("fig18", "CGA versions: normalized execution time and energy vs generation cap", runFig18)
	register("fig19", "CGA versions: QoS loss vs generation cap", runFig19)
	register("fig20", "CGA QoS-model sensitivity to training-set size", runFig20)
}

// cgaFixture holds the 30 random task graphs of the CGA experiments
// ("the number of nodes varies from 50 to 500 and CCR varies from 0.1 to
// 10").
type cgaFixture struct {
	graphs []*taskgraph.Graph
	seeds  []int64
	baseG  int
	cost   *energy.CostModel
}

// cgaFractions are the evaluated generation caps as fractions of the base
// generation count (the paper sweeps G up to the base maximum; G=half
// base gave ~50% improvement with <10% loss).
var cgaFractions = []float64{1.0 / 6, 2.0 / 6, 3.0 / 6, 4.0 / 6, 5.0 / 6}

func newCGAFixture(o Options) (*cgaFixture, error) {
	nGraphs := o.scaled(30, 4)
	f := &cgaFixture{
		baseG: o.scaled(600, 60),
		// Desktop machine; one work unit per node-evaluation inside a
		// makespan computation.
		cost: &energy.CostModel{
			IdleWatts:    120,
			FixedSeconds: 0.01,
			FixedJoules:  0.5,
			UnitSeconds:  map[string]float64{"eval": 2e-7},
			UnitJoules:   map[string]float64{"eval": 2e-8},
		},
	}
	rng := workload.NewRand(workload.Split(o.Seed, 400))
	for i := 0; i < nGraphs; i++ {
		nodes := 50 + rng.Intn(451)             // 50..500
		ccr := math.Pow(10, -1+2*rng.Float64()) // log-uniform in [0.1, 10]
		// Keep test scales manageable: shrink node counts with scale.
		if o.Scale < 1 {
			nodes = 50 + rng.Intn(int(450*o.Scale)+1)
		}
		g, err := taskgraph.Random(workload.Split(o.Seed, 401+int64(i)), nodes, ccr)
		if err != nil {
			return nil, err
		}
		f.graphs = append(f.graphs, g)
		f.seeds = append(f.seeds, workload.Split(o.Seed, 501+int64(i)))
	}
	return f, nil
}

// runGraph runs the GA on graph i for the given generations and returns
// the best makespan and the node-evaluation work.
func (f *cgaFixture) runGraph(i, generations int) (float64, float64, error) {
	ga, err := cga.New(f.graphs[i], cga.Config{Seed: f.seeds[i]})
	if err != nil {
		return 0, 0, err
	}
	span, err := ga.Run(generations)
	if err != nil {
		return 0, 0, err
	}
	work := float64(ga.Evaluations()) * float64(f.graphs[i].N())
	return span, work, nil
}

// sweep evaluates every graph at each generation cap (and the base),
// returning per-cap mean QoS loss and reports.
func (f *cgaFixture) sweep() (baseRep energy.Report, losses []float64, reps []energy.Report, err error) {
	nCaps := len(cgaFractions)
	lossSums := make([]float64, nCaps)
	accts := make([]*energy.Account, nCaps)
	for i := range accts {
		accts[i] = energy.NewAccount()
	}
	baseAcct := energy.NewAccount()
	for gi := range f.graphs {
		baseSpan, baseWork, err := f.runGraph(gi, f.baseG)
		if err != nil {
			return energy.Report{}, nil, nil, err
		}
		baseAcct.AddOp()
		baseAcct.Add("eval", baseWork)
		for ci, frac := range cgaFractions {
			span, work, err := f.runGraph(gi, int(frac*float64(f.baseG)))
			if err != nil {
				return energy.Report{}, nil, nil, err
			}
			lossSums[ci] += metrics.RelativeRegret(baseSpan, span)
			accts[ci].AddOp()
			accts[ci].Add("eval", work)
		}
	}
	losses = make([]float64, nCaps)
	reps = make([]energy.Report, nCaps)
	for ci := range cgaFractions {
		losses[ci] = lossSums[ci] / float64(len(f.graphs))
		reps[ci] = f.cost.Evaluate(accts[ci])
	}
	return f.cost.Evaluate(baseAcct), losses, reps, nil
}

func runFig18(o Options) (*Table, error) {
	f, err := newCGAFixture(o)
	if err != nil {
		return nil, err
	}
	baseRep, _, reps, err := f.sweep()
	if err != nil {
		return nil, err
	}
	t := &Table{Columns: []string{"version", "norm. exec time", "norm. energy"}}
	for ci, frac := range cgaFractions {
		t.AddRow(fmt.Sprintf("G=%d", int(frac*float64(f.baseG))),
			norm(reps[ci].Seconds/baseRep.Seconds),
			norm(reps[ci].Joules/baseRep.Joules))
	}
	t.AddRow(fmt.Sprintf("Base (G=%d)", f.baseG), "100.0", "100.0")
	t.AddNote("%d random task graphs (50-500 nodes, CCR 0.1-10)", len(f.graphs))
	return t, nil
}

func runFig19(o Options) (*Table, error) {
	f, err := newCGAFixture(o)
	if err != nil {
		return nil, err
	}
	_, losses, _, err := f.sweep()
	if err != nil {
		return nil, err
	}
	t := &Table{Columns: []string{"version", "QoS loss"}}
	for ci, frac := range cgaFractions {
		t.AddRow(fmt.Sprintf("G=%d", int(frac*float64(f.baseG))), pct(losses[ci]))
	}
	t.AddRow(fmt.Sprintf("Base (G=%d)", f.baseG), pct(0))
	t.AddNote("QoS loss = normalized increase in scheduled-program execution time vs base")
	return t, nil
}

// cgaLoopModel builds the generation-loop model from the first nTrain
// graphs.
func (f *cgaFixture) cgaLoopModel(nTrain int) (*model.LoopModel, error) {
	knots := make([]float64, len(cgaFractions))
	for i, frac := range cgaFractions {
		knots[i] = math.Max(1, frac*float64(f.baseG))
	}
	baseLevel := float64(f.baseG)
	cal, err := core.NewLoopCalibration("cga.generations", knots, baseLevel, baseLevel)
	if err != nil {
		return nil, err
	}
	losses := make([]float64, len(knots))
	works := make([]float64, len(knots))
	for gi := 0; gi < nTrain && gi < len(f.graphs); gi++ {
		// One run streaming through the knots.
		ga, err := cga.New(f.graphs[gi], cga.Config{Seed: f.seeds[gi]})
		if err != nil {
			return nil, err
		}
		spans := make([]float64, len(knots))
		for k, knot := range knots {
			for ga.Generation() < int(knot) {
				if _, err := ga.Step(); err != nil {
					return nil, err
				}
			}
			spans[k] = ga.BestMakespan()
			works[k] = float64(ga.Evaluations())
		}
		for ga.Generation() < f.baseG {
			if _, err := ga.Step(); err != nil {
				return nil, err
			}
		}
		baseSpan := ga.BestMakespan()
		for k := range knots {
			losses[k] = metrics.RelativeRegret(baseSpan, spans[k])
		}
		if err := cal.AddRun(losses, works); err != nil {
			return nil, err
		}
	}
	return cal.Build()
}

func runFig20(o Options) (*Table, error) {
	f, err := newCGAFixture(o)
	if err != nil {
		return nil, err
	}
	total := len(f.graphs)
	sizes := []int{max(2, total/6), max(3, total/3), max(4, total/2), total}
	level := cgaFractions[len(cgaFractions)-1] * float64(f.baseG) // paper: G=2500 of 3000
	ests := make([]float64, len(sizes))
	for i, n := range sizes {
		m, err := f.cgaLoopModel(n)
		if err != nil {
			return nil, err
		}
		ests[i] = m.PredictLoss(level)
	}
	ref := ests[len(ests)-1]
	t := &Table{Columns: []string{"training inputs", "estimated QoS loss at G=5/6 base", "difference vs largest"}}
	for i, n := range sizes {
		t.AddRow(fmt.Sprintf("%d", n), pct(ests[i]), pct(math.Abs(ests[i]-ref)))
	}
	t.AddNote("paper: differences stay under 0.5%% even with 5 inputs (discrete outcomes make CGA noisier than other apps)")
	return t, nil
}

package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestSelectorExperiment runs the reactive-vs-proactive comparison at a
// small scale and checks its structural invariants: two rows per
// workload in reactive/proactive order, parseable cells, and — the
// experiment's headline — the proactive search row cannot show a
// higher loss variance than the reactive one.
func TestSelectorExperiment(t *testing.T) {
	tbl, err := Run("selector", Options{Seed: 42, Scale: 0.05, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("got %d rows, want 6 (three workloads x two controllers)", len(tbl.Rows))
	}
	wantPairs := []string{"search", "raytracer", "dft"}
	for i, w := range wantPairs {
		re, pr := tbl.Rows[2*i], tbl.Rows[2*i+1]
		if re[0] != w || pr[0] != w {
			t.Fatalf("rows %d/%d name workloads %q/%q, want %q", 2*i, 2*i+1, re[0], pr[0], w)
		}
		if re[1] != "reactive" || pr[1] != "proactive" {
			t.Fatalf("%s controllers = %q/%q, want reactive/proactive", w, re[1], pr[1])
		}
		for _, row := range [][]string{re, pr} {
			for c := 4; c <= 5; c++ {
				if _, err := strconv.Atoi(row[c]); err != nil {
					t.Fatalf("%s %s column %d = %q not an integer", w, row[1], c, row[c])
				}
			}
		}
	}

	// The search note carries the variance comparison; the proactive
	// variance must not exceed the reactive one.
	var varNote string
	for _, n := range tbl.Notes {
		if strings.Contains(n, "loss variance reactive") {
			varNote = n
			break
		}
	}
	if varNote == "" {
		t.Fatal("no loss-variance note in output")
	}
	fields := strings.Fields(varNote)
	var vals []float64
	for _, f := range fields {
		if v, err := strconv.ParseFloat(f, 64); err == nil && strings.Contains(f, ".") {
			vals = append(vals, v)
		}
	}
	if len(vals) < 2 {
		t.Fatalf("could not parse variances from note %q", varNote)
	}
	reVar, prVar := vals[len(vals)-2], vals[len(vals)-1]
	if prVar > reVar {
		t.Errorf("proactive search loss variance %v above reactive %v", prVar, reVar)
	}
}

// TestQuantileEdges: edges come from quantiles, strictly increase, and
// degenerate key sets still yield a valid two-edge domain.
func TestQuantileEdges(t *testing.T) {
	edges := quantileEdges([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 4)
	if len(edges) < 2 {
		t.Fatalf("got %d edges, want >= 2", len(edges))
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			t.Fatalf("edges %v not strictly increasing", edges)
		}
	}
	if edges[0] != 1 || edges[len(edges)-1] != 8 {
		t.Errorf("edges %v do not span the key range [1, 8]", edges)
	}

	flat := quantileEdges([]float64{3, 3, 3}, 4)
	if len(flat) != 2 || flat[0] != 3 || flat[1] <= 3 {
		t.Errorf("degenerate keys produced edges %v, want [3, >3]", flat)
	}
}

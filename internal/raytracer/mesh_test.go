package raytracer

import (
	"math"
	"testing"
)

func mustTriangle(t *testing.T, a, b, c Vec) Triangle {
	t.Helper()
	tri, err := NewTriangle(a, b, c, Material{Diffuse: Vec{1, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	return tri
}

func TestNewTriangleRejectsDegenerate(t *testing.T) {
	if _, err := NewTriangle(Vec{0, 0, 0}, Vec{1, 1, 1}, Vec{2, 2, 2}, Material{}); err == nil {
		t.Error("collinear triangle accepted")
	}
	if _, err := NewTriangle(Vec{0, 0, 0}, Vec{0, 0, 0}, Vec{1, 0, 0}, Material{}); err == nil {
		t.Error("repeated vertex accepted")
	}
}

func TestTriangleNormal(t *testing.T) {
	tri := mustTriangle(t, Vec{0, 0, 0}, Vec{1, 0, 0}, Vec{0, 1, 0})
	if n := tri.Normal(); math.Abs(n.Z-1) > 1e-12 {
		t.Errorf("normal = %v, want +Z", n)
	}
}

func TestTriangleIntersect(t *testing.T) {
	tri := mustTriangle(t, Vec{-1, -1, -5}, Vec{1, -1, -5}, Vec{0, 1, -5})
	// Straight through the centroid.
	d, ok := tri.intersect(Ray{Origin: Vec{0, -0.2, 0}, Dir: Vec{0, 0, -1}})
	if !ok {
		t.Fatal("missed triangle")
	}
	if math.Abs(d-5) > 1e-9 {
		t.Errorf("t = %v, want 5", d)
	}
	// Outside the triangle.
	if _, ok := tri.intersect(Ray{Origin: Vec{5, 5, 0}, Dir: Vec{0, 0, -1}}); ok {
		t.Error("hit outside the triangle")
	}
	// Parallel ray.
	if _, ok := tri.intersect(Ray{Origin: Vec{0, 0, 0}, Dir: Vec{1, 0, 0}}); ok {
		t.Error("parallel ray hit")
	}
	// Behind the origin.
	if _, ok := tri.intersect(Ray{Origin: Vec{0, -0.2, -10}, Dir: Vec{0, 0, -1}}); ok {
		t.Error("hit behind the origin")
	}
}

func TestNewMeshValidation(t *testing.T) {
	if _, err := NewMesh(nil); err == nil {
		t.Error("empty mesh accepted")
	}
}

func TestMeshIntersectNearest(t *testing.T) {
	near := mustTriangle(t, Vec{-1, -1, -3}, Vec{1, -1, -3}, Vec{0, 1, -3})
	far := mustTriangle(t, Vec{-1, -1, -8}, Vec{1, -1, -8}, Vec{0, 1, -8})
	m, err := NewMesh([]Triangle{far, near})
	if err != nil {
		t.Fatal(err)
	}
	h, ok := m.intersect(Ray{Origin: Vec{0, -0.2, 0}, Dir: Vec{0, 0, -1}}, math.Inf(1))
	if !ok {
		t.Fatal("missed mesh")
	}
	if math.Abs(h.t-3) > 1e-9 {
		t.Errorf("t = %v, want nearest 3", h.t)
	}
	// Normal faces the ray.
	if h.normal.Dot(Vec{0, 0, -1}) >= 0 {
		t.Errorf("normal %v does not face the ray", h.normal)
	}
	// best closer than the mesh: no hit reported.
	if _, ok := m.intersect(Ray{Origin: Vec{0, -0.2, 0}, Dir: Vec{0, 0, -1}}, 1); ok {
		t.Error("reported hit beyond best")
	}
}

func TestMeshBoundingSphereRejection(t *testing.T) {
	tri := mustTriangle(t, Vec{-1, -1, -5}, Vec{1, -1, -5}, Vec{0, 1, -5})
	m, err := NewMesh([]Triangle{tri})
	if err != nil {
		t.Fatal(err)
	}
	// Pointing away from the mesh entirely.
	if _, ok := m.intersect(Ray{Origin: Vec{0, 0, 0}, Dir: Vec{0, 0, 1}}, math.Inf(1)); ok {
		t.Error("hit while pointing away")
	}
	// Offset far to the side.
	if _, ok := m.intersect(Ray{Origin: Vec{100, 0, 0}, Dir: Vec{0, 0, -1}}, math.Inf(1)); ok {
		t.Error("hit from far off axis")
	}
}

func TestIcosahedronValidation(t *testing.T) {
	if _, err := Icosahedron(Vec{}, 0, Material{}, 0); err == nil {
		t.Error("zero radius accepted")
	}
	if _, err := Icosahedron(Vec{}, 1, Material{}, -1); err == nil {
		t.Error("negative subdivisions accepted")
	}
	if _, err := Icosahedron(Vec{}, 1, Material{}, 6); err == nil {
		t.Error("excessive subdivisions accepted")
	}
}

func TestIcosahedronFaceCounts(t *testing.T) {
	for sub, want := range map[int]int{0: 20, 1: 80, 2: 320} {
		m, err := Icosahedron(Vec{0, 0, 0}, 1, Material{}, sub)
		if err != nil {
			t.Fatal(err)
		}
		if len(m.Tris) != want {
			t.Errorf("subdiv %d: %d faces, want %d", sub, len(m.Tris), want)
		}
	}
}

func TestIcosahedronVerticesOnSphere(t *testing.T) {
	center := Vec{2, 3, 4}
	const radius = 1.5
	m, err := Icosahedron(center, radius, Material{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tri := range m.Tris {
		for _, v := range []Vec{tri.A, tri.B, tri.C} {
			if d := v.Sub(center).Len(); math.Abs(d-radius) > 1e-9 {
				t.Fatalf("vertex %v at distance %v, want %v", v, d, radius)
			}
		}
	}
}

func TestIcosahedronRayHitsFromAllSides(t *testing.T) {
	m, err := Icosahedron(Vec{0, 0, 0}, 1, Material{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	dirs := []Vec{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}}
	for _, d := range dirs {
		origin := d.Scale(-5)
		h, ok := m.intersect(Ray{Origin: origin, Dir: d}, math.Inf(1))
		if !ok {
			t.Fatalf("ray from %v missed the icosahedron", origin)
		}
		// Entry point roughly radius away from center (within facet sag).
		if r := h.point.Len(); r < 0.85 || r > 1.01 {
			t.Fatalf("hit at radius %v", r)
		}
	}
}

func TestSceneRendersPolygonalModel(t *testing.T) {
	// A camera looking straight at the scene's icosahedral centerpiece
	// must produce different pixels than the same scene without it.
	with := NewScene(1)
	without := NewScene(1)
	without.Meshes = nil
	cam := Camera{Pos: Vec{0, 2, 8}, LookAt: Vec{0, 1.6, 0}, FOV: 40 * math.Pi / 180}
	a, _, err := Render(with, cam, 16, 12, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Render(without, cam, 16, 12, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0.0
	for i := range a.Pix {
		diff += math.Abs(a.Pix[i] - b.Pix[i])
	}
	if diff == 0 {
		t.Error("polygonal model invisible in render")
	}
}

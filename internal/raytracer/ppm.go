package raytracer

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
)

// WritePPM serializes the image as a binary PPM (P6) file with gamma-2.2
// encoding — enough to eyeball renders without any imaging dependency.
func (img *Image) WritePPM(w io.Writer) error {
	if img.W <= 0 || img.H <= 0 || len(img.Pix) != img.W*img.H*3 {
		return errors.New("raytracer: malformed image")
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", img.W, img.H); err != nil {
		return err
	}
	buf := make([]byte, 0, img.W*3)
	for y := 0; y < img.H; y++ {
		buf = buf[:0]
		for x := 0; x < img.W; x++ {
			base := (y*img.W + x) * 3
			for c := 0; c < 3; c++ {
				v := img.Pix[base+c]
				if v < 0 {
					v = 0
				}
				if v > 1 {
					v = 1
				}
				buf = append(buf, byte(255*math.Pow(v, 1/2.2)+0.5))
			}
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

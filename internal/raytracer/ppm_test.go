package raytracer

import (
	"bytes"
	"fmt"
	"testing"
)

func TestWritePPMHeaderAndSize(t *testing.T) {
	img := NewImage(4, 3)
	img.Pix[0] = 1 // top-left red channel
	var buf bytes.Buffer
	if err := img.WritePPM(&buf); err != nil {
		t.Fatal(err)
	}
	var w, h, maxv int
	var magic string
	n, err := fmt.Fscanf(bytes.NewReader(buf.Bytes()), "P6\n%d %d\n%d\n", &w, &h, &maxv)
	if err != nil || n != 3 {
		t.Fatalf("header parse: %v (%d fields)", err, n)
	}
	_ = magic
	if w != 4 || h != 3 || maxv != 255 {
		t.Errorf("header = %d %d %d", w, h, maxv)
	}
	// Body: exactly w*h*3 bytes after the header.
	header := fmt.Sprintf("P6\n%d %d\n%d\n", w, h, maxv)
	if got := buf.Len() - len(header); got != 4*3*3 {
		t.Errorf("body = %d bytes, want %d", got, 36)
	}
	// First byte is the gamma-encoded full-red = 255.
	if b := buf.Bytes()[len(header)]; b != 255 {
		t.Errorf("first byte = %d, want 255", b)
	}
	// An untouched black pixel stays 0.
	if b := buf.Bytes()[len(header)+3]; b != 0 {
		t.Errorf("black pixel byte = %d, want 0", b)
	}
}

func TestWritePPMClampsOutOfRange(t *testing.T) {
	img := NewImage(1, 1)
	img.Pix[0] = 5
	img.Pix[1] = -1
	var buf bytes.Buffer
	if err := img.WritePPM(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.Bytes()[len("P6\n1 1\n255\n"):]
	if body[0] != 255 || body[1] != 0 {
		t.Errorf("clamped bytes = %v", body[:3])
	}
}

func TestWritePPMRejectsMalformed(t *testing.T) {
	bad := &Image{W: 2, H: 2, Pix: make([]float64, 5)}
	if err := bad.WritePPM(&bytes.Buffer{}); err == nil {
		t.Error("malformed image accepted")
	}
	if err := (&Image{}).WritePPM(&bytes.Buffer{}); err == nil {
		t.Error("empty image accepted")
	}
}

func TestWritePPMRenderedScene(t *testing.T) {
	img, _, err := Render(NewScene(1), RandomCamera(2), 8, 6, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := img.WritePPM(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 8*6*3 {
		t.Errorf("output too small: %d bytes", buf.Len())
	}
}

package raytracer

import (
	"errors"
	"math"
)

// Triangle is a polygonal primitive with a precomputed geometric normal.
// 252.eon rasterizes "3D polygonal models"; meshes of triangles let the
// reproduction render faceted geometry alongside the analytic spheres.
type Triangle struct {
	A, B, C Vec
	Mat     Material
	normal  Vec
}

// NewTriangle builds a triangle; the normal follows the right-hand rule
// over (B-A, C-A). Degenerate (zero-area) triangles are rejected.
func NewTriangle(a, b, c Vec, mat Material) (Triangle, error) {
	n := b.Sub(a).Cross(c.Sub(a))
	if n.Len() == 0 {
		return Triangle{}, errors.New("raytracer: degenerate triangle")
	}
	return Triangle{A: a, B: b, C: c, Mat: mat, normal: n.Norm()}, nil
}

// Normal returns the unit geometric normal.
func (t *Triangle) Normal() Vec { return t.normal }

// intersect implements the Möller–Trumbore ray/triangle test, returning
// the ray parameter and whether a hit in front of the origin occurred.
func (t *Triangle) intersect(r Ray) (float64, bool) {
	e1 := t.B.Sub(t.A)
	e2 := t.C.Sub(t.A)
	p := r.Dir.Cross(e2)
	det := e1.Dot(p)
	if det > -1e-12 && det < 1e-12 {
		return 0, false // parallel
	}
	inv := 1 / det
	s := r.Origin.Sub(t.A)
	u := s.Dot(p) * inv
	if u < 0 || u > 1 {
		return 0, false
	}
	q := s.Cross(e1)
	v := r.Dir.Dot(q) * inv
	if v < 0 || u+v > 1 {
		return 0, false
	}
	d := e2.Dot(q) * inv
	if d < eps {
		return 0, false
	}
	return d, true
}

// Mesh is a set of triangles sharing a bounding sphere for quick
// rejection.
type Mesh struct {
	Tris   []Triangle
	center Vec
	radius float64
}

// NewMesh wraps triangles with a bounding sphere.
func NewMesh(tris []Triangle) (*Mesh, error) {
	if len(tris) == 0 {
		return nil, errors.New("raytracer: empty mesh")
	}
	var c Vec
	for _, t := range tris {
		c = c.Add(t.A).Add(t.B).Add(t.C)
	}
	c = c.Scale(1 / float64(3*len(tris)))
	r := 0.0
	for _, t := range tris {
		for _, v := range []Vec{t.A, t.B, t.C} {
			if d := v.Sub(c).Len(); d > r {
				r = d
			}
		}
	}
	return &Mesh{Tris: tris, center: c, radius: r}, nil
}

// intersect finds the nearest triangle hit closer than best.
func (m *Mesh) intersect(r Ray, best float64) (hit, bool) {
	// Bounding-sphere rejection.
	oc := r.Origin.Sub(m.center)
	b := oc.Dot(r.Dir)
	c := oc.Dot(oc) - m.radius*m.radius
	if c > 0 && b > 0 {
		return hit{}, false // outside and pointing away
	}
	if b*b-c < 0 {
		return hit{}, false // misses the bounding sphere
	}
	out := hit{t: best}
	found := false
	for i := range m.Tris {
		tri := &m.Tris[i]
		if d, ok := tri.intersect(r); ok && d < out.t {
			n := tri.normal
			if n.Dot(r.Dir) > 0 {
				n = n.Scale(-1) // face the ray
			}
			out = hit{t: d, point: r.At(d), normal: n, mat: tri.Mat}
			found = true
		}
	}
	return out, found
}

// icosahedron vertices on the unit sphere.
func icosahedronVertices() []Vec {
	phi := (1 + math.Sqrt(5)) / 2
	raw := []Vec{
		{-1, phi, 0}, {1, phi, 0}, {-1, -phi, 0}, {1, -phi, 0},
		{0, -1, phi}, {0, 1, phi}, {0, -1, -phi}, {0, 1, -phi},
		{phi, 0, -1}, {phi, 0, 1}, {-phi, 0, -1}, {-phi, 0, 1},
	}
	for i := range raw {
		raw[i] = raw[i].Norm()
	}
	return raw
}

// icosahedron face indices.
var icosahedronFaces = [][3]int{
	{0, 11, 5}, {0, 5, 1}, {0, 1, 7}, {0, 7, 10}, {0, 10, 11},
	{1, 5, 9}, {5, 11, 4}, {11, 10, 2}, {10, 7, 6}, {7, 1, 8},
	{3, 9, 4}, {3, 4, 2}, {3, 2, 6}, {3, 6, 8}, {3, 8, 9},
	{4, 9, 5}, {2, 4, 11}, {6, 2, 10}, {8, 6, 7}, {9, 8, 1},
}

// Icosahedron returns the 20-face polygonal sphere approximation at the
// given center and radius, optionally subdivided: each subdivision level
// splits every face into four, projecting new vertices back onto the
// sphere (80, 320, ... faces).
func Icosahedron(center Vec, radius float64, mat Material, subdivisions int) (*Mesh, error) {
	if radius <= 0 {
		return nil, errors.New("raytracer: non-positive radius")
	}
	if subdivisions < 0 || subdivisions > 5 {
		return nil, errors.New("raytracer: subdivisions out of range [0,5]")
	}
	type face [3]Vec
	verts := icosahedronVertices()
	faces := make([]face, 0, len(icosahedronFaces))
	for _, f := range icosahedronFaces {
		faces = append(faces, face{verts[f[0]], verts[f[1]], verts[f[2]]})
	}
	for s := 0; s < subdivisions; s++ {
		next := make([]face, 0, 4*len(faces))
		for _, f := range faces {
			ab := f[0].Add(f[1]).Scale(0.5).Norm()
			bc := f[1].Add(f[2]).Scale(0.5).Norm()
			ca := f[2].Add(f[0]).Scale(0.5).Norm()
			next = append(next,
				face{f[0], ab, ca}, face{f[1], bc, ab},
				face{f[2], ca, bc}, face{ab, bc, ca})
		}
		faces = next
	}
	tris := make([]Triangle, 0, len(faces))
	for _, f := range faces {
		a := center.Add(f[0].Scale(radius))
		b := center.Add(f[1].Scale(radius))
		c := center.Add(f[2].Scale(radius))
		t, err := NewTriangle(a, b, c, mat)
		if err != nil {
			return nil, err
		}
		tris = append(tris, t)
	}
	return NewMesh(tris)
}

package raytracer

import (
	"math"
	"testing"

	"green/internal/metrics"
)

func TestVecOps(t *testing.T) {
	a := Vec{1, 2, 3}
	b := Vec{4, 5, 6}
	if got := a.Add(b); got != (Vec{5, 7, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); got != (Vec{3, 3, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Mul(b); got != (Vec{4, 10, 18}) {
		t.Errorf("Mul = %v", got)
	}
	if got := a.Scale(2); got != (Vec{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 32 {
		t.Errorf("Dot = %v", got)
	}
	if got := (Vec{1, 0, 0}).Cross(Vec{0, 1, 0}); got != (Vec{0, 0, 1}) {
		t.Errorf("Cross = %v", got)
	}
	if got := (Vec{3, 4, 0}).Len(); got != 5 {
		t.Errorf("Len = %v", got)
	}
	n := (Vec{0, 0, 7}).Norm()
	if math.Abs(n.Len()-1) > 1e-12 {
		t.Errorf("Norm length = %v", n.Len())
	}
	if z := (Vec{}).Norm(); z != (Vec{}) {
		t.Errorf("Norm of zero = %v", z)
	}
}

func TestRayAt(t *testing.T) {
	r := Ray{Origin: Vec{1, 0, 0}, Dir: Vec{0, 1, 0}}
	if got := r.At(2.5); got != (Vec{1, 2.5, 0}) {
		t.Errorf("At = %v", got)
	}
}

func TestNewSceneDeterministic(t *testing.T) {
	a, b := NewScene(3), NewScene(3)
	if len(a.Spheres) != len(b.Spheres) {
		t.Fatal("sphere count differs")
	}
	for i := range a.Spheres {
		if a.Spheres[i] != b.Spheres[i] {
			t.Fatal("scene not deterministic")
		}
	}
	// Scene must contain at least one emissive sphere.
	lit := false
	for _, s := range a.Spheres {
		if s.Mat.Emission.Len() > 0 {
			lit = true
		}
		if s.Radius <= 0 {
			t.Errorf("non-positive radius %v", s.Radius)
		}
	}
	if !lit {
		t.Error("no lights in scene")
	}
}

func TestIntersectSphereAndGround(t *testing.T) {
	s := &Scene{
		Spheres: []Sphere{{Center: Vec{0, 1, -5}, Radius: 1,
			Mat: Material{Diffuse: Vec{1, 0, 0}}}},
		GroundY: 0,
		Ground:  Material{Diffuse: Vec{0.5, 0.5, 0.5}},
	}
	// Straight at the sphere.
	h, ok := s.intersect(Ray{Origin: Vec{0, 1, 0}, Dir: Vec{0, 0, -1}})
	if !ok {
		t.Fatal("missed sphere")
	}
	if math.Abs(h.t-4) > 1e-9 {
		t.Errorf("t = %v, want 4", h.t)
	}
	if h.normal.Z <= 0 {
		t.Errorf("normal %v should face the ray", h.normal)
	}
	// Downward: ground.
	h, ok = s.intersect(Ray{Origin: Vec{10, 2, 10}, Dir: Vec{0, -1, 0}})
	if !ok {
		t.Fatal("missed ground")
	}
	if h.normal != (Vec{0, 1, 0}) {
		t.Errorf("ground normal = %v", h.normal)
	}
	// Upward into the sky: nothing.
	if _, ok := s.intersect(Ray{Origin: Vec{0, 5, 0}, Dir: Vec{0, 1, 0}}); ok {
		t.Error("hit something in the sky")
	}
}

func TestRandomCameraLooksAtScene(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		c := RandomCamera(seed)
		if c.Pos.Y <= 0 {
			t.Errorf("camera below ground: %+v", c)
		}
		d := c.LookAt.Sub(c.Pos).Len()
		if d < 5 {
			t.Errorf("camera too close: %v", d)
		}
	}
	if RandomCamera(5) != RandomCamera(5) {
		t.Error("camera not deterministic")
	}
}

func TestRendererValidation(t *testing.T) {
	if _, err := NewRenderer(nil, Camera{}, 8, 8, 1); err == nil {
		t.Error("nil scene accepted")
	}
	if _, err := NewRenderer(NewScene(1), Camera{}, 0, 8, 1); err == nil {
		t.Error("zero width accepted")
	}
}

func TestRenderDeterministicAndPrefixStable(t *testing.T) {
	scene := NewScene(1)
	cam := RandomCamera(2)
	img1, rays1, err := Render(scene, cam, 12, 9, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	img2, rays2, err := Render(scene, cam, 12, 9, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rays1 != rays2 {
		t.Errorf("ray counts differ: %d vs %d", rays1, rays2)
	}
	d, err := metrics.PixelDiff(img1.Pix, img2.Pix)
	if err != nil || d != 0 {
		t.Errorf("same-seed renders differ: %v (%v)", d, err)
	}

	// Prefix stability: an 8-pass renderer's state after 4 passes equals
	// a 4-pass render.
	r, err := NewRenderer(scene, cam, 12, 9, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		r.Pass()
	}
	snap4 := r.Snapshot()
	d, _ = metrics.PixelDiff(img1.Pix, snap4.Pix)
	if d != 0 {
		t.Errorf("prefix not stable: diff %v", d)
	}
	for i := 0; i < 4; i++ {
		r.Pass()
	}
	if r.Passes() != 8 {
		t.Errorf("passes = %d", r.Passes())
	}
}

func TestImageInRangeAndLit(t *testing.T) {
	img, rays, err := Render(NewScene(1), RandomCamera(3), 16, 12, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rays <= int64(16*12*3) {
		t.Errorf("rays = %d, want more than primaries (bounces)", rays)
	}
	sum := 0.0
	for _, v := range img.Pix {
		if v < 0 || v > 1 {
			t.Fatalf("pixel %v out of range", v)
		}
		sum += v
	}
	if sum == 0 {
		t.Error("image fully black")
	}
}

func TestQoSConvergesWithPasses(t *testing.T) {
	// More passes must approach the high-sample reference: the QoS loss
	// versus the reference decreases (the diminishing-returns behavior
	// the eon approximation exploits).
	scene := NewScene(1)
	cam := RandomCamera(4)
	const w, h = 16, 12
	ref, _, err := Render(scene, cam, w, h, 64, 9)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRenderer(scene, cam, w, h, 9)
	if err != nil {
		t.Fatal(err)
	}
	var losses []float64
	for _, target := range []int{1, 4, 16} {
		for r.Passes() < target {
			r.Pass()
		}
		d, err := metrics.PixelDiff(ref.Pix, r.Snapshot().Pix)
		if err != nil {
			t.Fatal(err)
		}
		losses = append(losses, d)
	}
	if !(losses[0] > losses[1] && losses[1] > losses[2]) {
		t.Errorf("loss not decreasing with passes: %v", losses)
	}
	if losses[2] <= 0 {
		t.Errorf("16-pass image suspiciously identical to 64-pass reference")
	}
}

func TestSnapshotBeforeAnyPassIsBlack(t *testing.T) {
	r, err := NewRenderer(NewScene(1), RandomCamera(1), 4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range r.Snapshot().Pix {
		if v != 0 {
			t.Fatal("pre-pass snapshot not black")
		}
	}
}

package raytracer

import "math"

// Vec is a 3-component vector used for points, directions, and linear RGB
// colors.
type Vec struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec) Add(w Vec) Vec { return Vec{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec) Sub(w Vec) Vec { return Vec{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Mul returns the component-wise product v * w (color modulation).
func (v Vec) Mul(w Vec) Vec { return Vec{v.X * w.X, v.Y * w.Y, v.Z * w.Z} }

// Scale returns v * s.
func (v Vec) Scale(s float64) Vec { return Vec{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product.
func (v Vec) Dot(w Vec) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product.
func (v Vec) Cross(w Vec) Vec {
	return Vec{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Len returns the Euclidean norm.
func (v Vec) Len() float64 { return math.Sqrt(v.Dot(v)) }

// Norm returns the unit vector in v's direction (zero vector unchanged).
func (v Vec) Norm() Vec {
	l := v.Len()
	if l == 0 {
		return v
	}
	return v.Scale(1 / l)
}

// Ray is an origin and unit direction.
type Ray struct {
	Origin, Dir Vec
}

// At returns the point at parameter t along the ray.
func (r Ray) At(t float64) Vec { return r.Origin.Add(r.Dir.Scale(t)) }

// Package raytracer implements a Monte-Carlo path tracer in the style of
// Kajiya's rendering-equation algorithm — the algorithm the paper's
// 252.eon substrate uses. The tracer refines the image with one sample
// per pixel per pass; the pass loop is the approximable "main loop": QoS
// improvement per pass diminishes as the estimate converges, so the loop
// can be terminated early with controlled pixel-difference loss, which is
// exactly the eon experiment (Figures 15–17).
//
// The SPEC reference 3D model is not redistributable, so the scene is a
// deterministic procedurally-generated arrangement of diffuse and emissive
// spheres above a ground plane; inputs vary by random camera placement, as
// the paper's inputs do ("100 input data-sets by randomly changing the
// camera view").
package raytracer

import (
	"errors"
	"math"
	"math/rand"

	"green/internal/workload"
)

// Material describes a surface: diffuse reflectance and optional emission.
type Material struct {
	Diffuse  Vec
	Emission Vec
}

// Sphere is the scene primitive.
type Sphere struct {
	Center Vec
	Radius float64
	Mat    Material
}

// Scene holds the renderable world: spheres and triangle meshes over an
// infinite ground plane at y = 0, lit by emissive spheres and a sky dome.
type Scene struct {
	Spheres  []Sphere
	Meshes   []*Mesh
	GroundY  float64
	Ground   Material
	SkyZen   Vec // sky color at zenith
	SkyHoriz Vec // sky color at horizon
}

// NewScene builds the deterministic reference scene: a grid of diffuse
// spheres with varied colors plus two emissive spheres acting as area
// lights.
func NewScene(seed int64) *Scene {
	rng := workload.NewRand(seed)
	s := &Scene{
		GroundY:  0,
		Ground:   Material{Diffuse: Vec{0.45, 0.45, 0.45}},
		SkyZen:   Vec{0.35, 0.45, 0.70},
		SkyHoriz: Vec{0.80, 0.85, 0.95},
	}
	for gx := -2; gx <= 2; gx++ {
		for gz := -2; gz <= 2; gz++ {
			r := 0.35 + 0.35*rng.Float64()
			s.Spheres = append(s.Spheres, Sphere{
				Center: Vec{
					float64(gx)*2.2 + 0.5*rng.NormFloat64(),
					r,
					float64(gz)*2.2 + 0.5*rng.NormFloat64(),
				},
				Radius: r,
				Mat: Material{Diffuse: Vec{
					0.2 + 0.7*rng.Float64(),
					0.2 + 0.7*rng.Float64(),
					0.2 + 0.7*rng.Float64(),
				}},
			})
		}
	}
	// Two area lights.
	s.Spheres = append(s.Spheres,
		Sphere{Center: Vec{-4, 7, -2}, Radius: 1.6,
			Mat: Material{Emission: Vec{14, 13, 11}}},
		Sphere{Center: Vec{5, 6, 4}, Radius: 1.1,
			Mat: Material{Emission: Vec{9, 10, 12}}},
	)
	// The polygonal centerpiece: a faceted icosahedral model (80 faces),
	// standing in for the eon reference 3D polygonal model.
	mesh, err := Icosahedron(Vec{0, 1.6, 0}, 1.3,
		Material{Diffuse: Vec{0.85, 0.75, 0.35}}, 1)
	if err == nil { // construction is deterministic; err only on bad args
		s.Meshes = append(s.Meshes, mesh)
	}
	return s
}

// Camera is a pinhole camera.
type Camera struct {
	Pos, LookAt Vec
	FOV         float64 // vertical field of view, radians
}

// RandomCamera places a camera on a ring around the scene looking at its
// center, standing in for the paper's randomized camera-view inputs.
func RandomCamera(seed int64) Camera {
	rng := workload.NewRand(seed)
	angle := 2 * math.Pi * rng.Float64()
	dist := 9 + 4*rng.Float64()
	height := 2.5 + 3*rng.Float64()
	return Camera{
		Pos:    Vec{dist * math.Cos(angle), height, dist * math.Sin(angle)},
		LookAt: Vec{0, 0.8, 0},
		FOV:    50 * math.Pi / 180,
	}
}

// Image is a linear-RGB framebuffer; Pix has length W*H*3.
type Image struct {
	W, H int
	Pix  []float64
}

// NewImage allocates a black framebuffer.
func NewImage(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]float64, w*h*3)}
}

const (
	maxDepth = 3
	eps      = 1e-4
)

// hit is an intersection record.
type hit struct {
	t      float64
	point  Vec
	normal Vec
	mat    Material
}

// intersect finds the nearest intersection of r with the scene.
func (s *Scene) intersect(r Ray) (hit, bool) {
	best := hit{t: math.Inf(1)}
	found := false
	for i := range s.Spheres {
		sp := &s.Spheres[i]
		oc := r.Origin.Sub(sp.Center)
		b := oc.Dot(r.Dir)
		c := oc.Dot(oc) - sp.Radius*sp.Radius
		disc := b*b - c
		if disc <= 0 {
			continue
		}
		sq := math.Sqrt(disc)
		t := -b - sq
		if t < eps {
			t = -b + sq
		}
		if t < eps || t >= best.t {
			continue
		}
		p := r.At(t)
		best = hit{t: t, point: p, normal: p.Sub(sp.Center).Norm(), mat: sp.Mat}
		found = true
	}
	// Triangle meshes.
	for _, m := range s.Meshes {
		if h, ok := m.intersect(r, best.t); ok {
			best = h
			found = true
		}
	}
	// Ground plane y = GroundY.
	if r.Dir.Y != 0 {
		t := (s.GroundY - r.Origin.Y) / r.Dir.Y
		if t > eps && t < best.t {
			p := r.At(t)
			best = hit{t: t, point: p, normal: Vec{0, 1, 0}, mat: s.Ground}
			found = true
		}
	}
	return best, found
}

// sky returns the environment radiance for a direction.
func (s *Scene) sky(d Vec) Vec {
	t := 0.5 * (d.Y + 1)
	return s.SkyHoriz.Scale(1 - t).Add(s.SkyZen.Scale(t))
}

// trace evaluates the rendering equation along r with cosine-weighted
// diffuse bounces (Kajiya-style path tracing, fixed depth). rays counts
// every traced ray, including bounces, for the work model.
func (s *Scene) trace(r Ray, depth int, rng *rand.Rand, rays *int64) Vec {
	*rays++
	h, ok := s.intersect(r)
	if !ok {
		return s.sky(r.Dir)
	}
	col := h.mat.Emission
	if depth >= maxDepth {
		return col
	}
	// Cosine-weighted hemisphere sample about the normal.
	u1, u2 := rng.Float64(), rng.Float64()
	rad := math.Sqrt(u1)
	theta := 2 * math.Pi * u2
	// Orthonormal basis around the normal.
	w := h.normal
	var a Vec
	if math.Abs(w.X) > 0.9 {
		a = Vec{0, 1, 0}
	} else {
		a = Vec{1, 0, 0}
	}
	u := w.Cross(a).Norm()
	v := w.Cross(u)
	dir := u.Scale(rad * math.Cos(theta)).
		Add(v.Scale(rad * math.Sin(theta))).
		Add(w.Scale(math.Sqrt(1 - u1))).Norm()
	bounce := s.trace(Ray{Origin: h.point.Add(h.normal.Scale(eps)), Dir: dir},
		depth+1, rng, rays)
	return col.Add(h.mat.Diffuse.Mul(bounce))
}

// Renderer accumulates passes of one sample per pixel. The pass loop is
// the approximable main loop of the eon experiment: after m passes the
// framebuffer holds the mean of the first m per-pixel samples, so a
// prefix of passes is exactly what early termination would have produced.
type Renderer struct {
	scene  *Scene
	cam    Camera
	w, h   int
	seed   int64
	accum  []float64
	passes int
	rays   int64
}

// NewRenderer prepares an incremental render of scene from cam at the
// given resolution. seed determinizes the Monte-Carlo sampling per input.
func NewRenderer(scene *Scene, cam Camera, w, h int, seed int64) (*Renderer, error) {
	if scene == nil {
		return nil, errors.New("raytracer: nil scene")
	}
	if w <= 0 || h <= 0 {
		return nil, errors.New("raytracer: non-positive resolution")
	}
	return &Renderer{
		scene: scene, cam: cam, w: w, h: h, seed: seed,
		accum: make([]float64, w*h*3),
	}, nil
}

// Pass renders one more sample per pixel. Sampling for pass p is a pure
// function of (seed, pass, pixel), so stopping after m passes yields a
// prefix-stable result.
func (r *Renderer) Pass() {
	p := r.passes
	// Camera basis.
	forward := r.cam.LookAt.Sub(r.cam.Pos).Norm()
	right := forward.Cross(Vec{0, 1, 0}).Norm()
	up := right.Cross(forward)
	halfH := math.Tan(r.cam.FOV / 2)
	halfW := halfH * float64(r.w) / float64(r.h)

	for y := 0; y < r.h; y++ {
		for x := 0; x < r.w; x++ {
			pix := (y*r.w + x)
			rng := workload.NewRand(workload.Split(r.seed, int64(p)<<32|int64(pix)))
			// Jittered position within the pixel.
			jx := (float64(x) + rng.Float64()) / float64(r.w)
			jy := (float64(y) + rng.Float64()) / float64(r.h)
			dir := forward.
				Add(right.Scale((2*jx - 1) * halfW)).
				Add(up.Scale((1 - 2*jy) * halfH)).Norm()
			c := r.scene.trace(Ray{Origin: r.cam.Pos, Dir: dir}, 0, rng, &r.rays)
			r.accum[pix*3] += c.X
			r.accum[pix*3+1] += c.Y
			r.accum[pix*3+2] += c.Z
		}
	}
	r.passes++
}

// Passes returns the number of completed passes.
func (r *Renderer) Passes() int { return r.passes }

// Rays returns the total rays traced so far (the work units).
func (r *Renderer) Rays() int64 { return r.rays }

// Snapshot returns the current tone-mapped image (mean of accumulated
// samples, clamped to [0, 1]).
func (r *Renderer) Snapshot() *Image {
	img := NewImage(r.w, r.h)
	if r.passes == 0 {
		return img
	}
	inv := 1 / float64(r.passes)
	for i, v := range r.accum {
		t := v * inv
		if t > 1 {
			t = 1
		}
		img.Pix[i] = t
	}
	return img
}

// Render is the convenience one-shot API: render spp samples per pixel.
func Render(scene *Scene, cam Camera, w, h, spp int, seed int64) (*Image, int64, error) {
	r, err := NewRenderer(scene, cam, w, h, seed)
	if err != nil {
		return nil, 0, err
	}
	for i := 0; i < spp; i++ {
		r.Pass()
	}
	return r.Snapshot(), r.Rays(), nil
}

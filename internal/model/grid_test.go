package model

import (
	"encoding/json"
	"math"
	"testing"
)

func grid() Grid2D {
	return Grid2D{XLo: 0, XHi: 10, YLo: 0, YHi: 4, NX: 5, NY: 2}
}

func TestNewCalibration2DValidation(t *testing.T) {
	if _, err := NewCalibration2D("f", 10, nil, nil, grid()); err == nil {
		t.Error("empty versions accepted")
	}
	if _, err := NewCalibration2D("f", 10, []string{"a"}, []float64{1, 2}, grid()); err == nil {
		t.Error("mismatched names/work accepted")
	}
	if _, err := NewCalibration2D("f", 0, []string{"a"}, []float64{1}, grid()); err == nil {
		t.Error("zero precise work accepted")
	}
	if _, err := NewCalibration2D("f", 10, []string{"a"}, []float64{0}, grid()); err == nil {
		t.Error("zero version work accepted")
	}
	bad := grid()
	bad.NX = 0
	if _, err := NewCalibration2D("f", 10, []string{"a"}, []float64{1}, bad); err == nil {
		t.Error("zero-cell grid accepted")
	}
	bad = grid()
	bad.XHi = bad.XLo
	if _, err := NewCalibration2D("f", 10, []string{"a"}, []float64{1}, bad); err == nil {
		t.Error("degenerate bounds accepted")
	}
}

func TestGrid2DCellIndex(t *testing.T) {
	g := grid()
	// Corner cells.
	if got := g.cellIndex(0, 0); got != 0 {
		t.Errorf("cell(0,0) = %d", got)
	}
	if got := g.cellIndex(9.99, 3.99); got != 9 {
		t.Errorf("cell(max) = %d, want 9", got)
	}
	// Out of range.
	for _, p := range [][2]float64{{-1, 0}, {10, 0}, {0, -1}, {0, 4}} {
		if got := g.cellIndex(p[0], p[1]); got != -1 {
			t.Errorf("cell(%v) = %d, want -1", p, got)
		}
	}
	// Mid cell: x in [2,4) is column 1; y in [2,4) is row 1 -> 1*5+1 = 6.
	if got := g.cellIndex(3, 3); got != 6 {
		t.Errorf("cell(3,3) = %d, want 6", got)
	}
}

func build2D(t *testing.T) *FuncModel2D {
	t.Helper()
	cal, err := NewCalibration2D("f2", 18, []string{"v0", "v1"}, []float64{4, 8}, grid())
	if err != nil {
		t.Fatal(err)
	}
	// v0 is good only for small x; v1 is good everywhere sampled.
	for x := 0.5; x < 10; x++ {
		for y := 0.5; y < 4; y++ {
			loss0 := 0.001
			if x > 4 {
				loss0 = 0.2
			}
			if err := cal.AddSample(0, x, y, loss0); err != nil {
				t.Fatal(err)
			}
			if err := cal.AddSample(1, x, y, 0.002); err != nil {
				t.Fatal(err)
			}
		}
	}
	m, err := cal.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFuncModel2DSelection(t *testing.T) {
	m := build2D(t)
	// Small x: cheap v0 qualifies.
	if got := m.SelectVersion(1, 1, 0.01); got != 0 {
		t.Errorf("small-x selection = %s, want v0", m.VersionName(got))
	}
	// Large x: only v1 qualifies.
	if got := m.SelectVersion(8, 1, 0.01); got != 1 {
		t.Errorf("large-x selection = %s, want v1", m.VersionName(got))
	}
	// Impossible SLA: precise.
	if got := m.SelectVersion(1, 1, 1e-9); got != PreciseVersion {
		t.Errorf("tight-SLA selection = %s, want precise", m.VersionName(got))
	}
	// Outside the grid: precise.
	if got := m.SelectVersion(100, 1, 0.5); got != PreciseVersion {
		t.Errorf("outside-grid selection = %s, want precise", m.VersionName(got))
	}
}

func TestFuncModel2DEmptyCellsArePrecise(t *testing.T) {
	cal, err := NewCalibration2D("f2", 18, []string{"v0"}, []float64{4}, grid())
	if err != nil {
		t.Fatal(err)
	}
	// Only one cell sampled.
	if err := cal.AddSample(0, 1, 1, 0.001); err != nil {
		t.Fatal(err)
	}
	m, err := cal.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := m.SelectVersion(1, 1, 0.01); got != 0 {
		t.Errorf("sampled cell = %s, want v0", m.VersionName(got))
	}
	if got := m.SelectVersion(9, 3, 0.01); got != PreciseVersion {
		t.Errorf("unsampled cell = %s, want precise", m.VersionName(got))
	}
}

func TestCalibration2DAddSampleValidation(t *testing.T) {
	cal, _ := NewCalibration2D("f2", 18, []string{"v0"}, []float64{4}, grid())
	if err := cal.AddSample(1, 0, 0, 0); err == nil {
		t.Error("bad version accepted")
	}
	if err := cal.AddSample(0, 0, 0, -1); err == nil {
		t.Error("negative loss accepted")
	}
	if err := cal.AddSample(0, 0, 0, math.NaN()); err == nil {
		t.Error("NaN loss accepted")
	}
	// Outside-grid samples are silently dropped, not errors.
	if err := cal.AddSample(0, 1e9, 0, 0.1); err != nil {
		t.Errorf("outside-grid sample errored: %v", err)
	}
	if _, err := cal.Build(); err != ErrNoData {
		t.Errorf("build with no in-grid samples err = %v, want ErrNoData", err)
	}
}

func TestFuncModel2DCoverage(t *testing.T) {
	m := build2D(t)
	// Every sampled cell has v1 loss 0.002 <= 0.01, so all 10 cells are
	// covered at that SLA...
	if got := m.CoveredCells(0.01); got != 10 {
		t.Errorf("covered = %d, want 10", got)
	}
	// ...and none at an impossible SLA.
	if got := m.CoveredCells(1e-9); got != 0 {
		t.Errorf("covered = %d, want 0", got)
	}
}

func TestFuncModel2DVersionName(t *testing.T) {
	m := build2D(t)
	if m.VersionName(PreciseVersion) != "precise" || m.VersionName(0) != "v0" {
		t.Error("names wrong")
	}
	if m.VersionName(99) == "v0" {
		t.Error("invalid index aliased a version")
	}
}

func TestFuncModel2DJSONRoundTrip(t *testing.T) {
	m := build2D(t)
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var m2 FuncModel2D
	if err := json.Unmarshal(data, &m2); err != nil {
		t.Fatal(err)
	}
	if m2.Name != m.Name || m2.Grid != m.Grid || len(m2.Versions) != len(m.Versions) {
		t.Errorf("round trip lost data: %+v", m2)
	}
	if got := m2.SelectVersion(1, 1, 0.01); got != 0 {
		t.Errorf("round-tripped selection = %d", got)
	}
}

func TestFuncModelJSONRoundTrip(t *testing.T) {
	m, err := BuildFuncModel("f", 18, []VersionCurve{
		{Name: "v", Work: 4, Samples: []FuncSample{{X: 0, Loss: 0.1}, {X: 1, Loss: 0.2}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var m2 FuncModel
	if err := json.Unmarshal(data, &m2); err != nil {
		t.Fatal(err)
	}
	if m2.Name != "f" || m2.PreciseWork != 18 || len(m2.Versions) != 1 {
		t.Errorf("round trip lost data: %+v", m2)
	}
	if got := m2.Versions[0].LossAt(0.5); math.Abs(got-0.15) > 1e-12 {
		t.Errorf("round-tripped LossAt = %v", got)
	}
}

package model_test

import (
	"fmt"

	"green/internal/model"
)

// ExampleLoopModel_StaticParams shows the paper's interface (1): the QoS
// model inverts a target SLA into the early-termination threshold M.
func ExampleLoopModel_StaticParams() {
	m, err := model.BuildLoopModel("search.match", []model.CalPoint{
		{Level: 100, QoSLoss: 0.10, Work: 100},
		{Level: 500, QoSLoss: 0.02, Work: 500},
		{Level: 1000, QoSLoss: 0.005, Work: 1000},
	}, 5000, 5000)
	if err != nil {
		panic(err)
	}
	mSLA, err := m.StaticParams(0.02)
	if err != nil {
		panic(err)
	}
	fmt.Printf("M = %.0f iterations (%.1fx speedup)\n", mSLA, m.Speedup(mSLA))
	// Output: M = 500 iterations (10.0x speedup)
}

// ExampleFuncModel_Ranges shows the paper's QoSModelFunc interface: per
// input range, the cheapest approximate version meeting the SLA.
func ExampleFuncModel_Ranges() {
	m, err := model.BuildFuncModel("exp", 18, []model.VersionCurve{
		{Name: "exp(3)", Work: 4, Samples: []model.FuncSample{
			{X: 0, Loss: 0.001}, {X: 1, Loss: 0.05}, {X: 2, Loss: 0.4},
		}},
		{Name: "exp(4)", Work: 5, Samples: []model.FuncSample{
			{X: 0, Loss: 0.0001}, {X: 1, Loss: 0.008}, {X: 2, Loss: 0.1},
		}},
	})
	if err != nil {
		panic(err)
	}
	for _, r := range m.Ranges(0.01) {
		fmt.Printf("[%.2f, %.2f) -> %s\n", r.Lo, r.Hi, m.VersionName(r.Version))
	}
	// Output:
	// [0.00, 0.50) -> exp(3)
	// [0.50, 1.50) -> exp(4)
	// [1.50, 2.00) -> precise
}

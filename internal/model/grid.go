package model

import (
	"errors"
	"fmt"
	"math"
)

// This file implements the extension the paper leaves as future work in
// footnote 1: "Our current implementation constructs models based on a
// single input parameter. However, this can be extended to multiple
// parameters." FuncModel2D models a function of two numeric parameters on
// a regular grid; selection picks, per cell, the cheapest version whose
// binned loss meets the SLA.

// Grid2D is a regular 2-parameter binning over [XLo, XHi) x [YLo, YHi).
type Grid2D struct {
	XLo float64 `json:"x_lo"`
	XHi float64 `json:"x_hi"`
	YLo float64 `json:"y_lo"`
	YHi float64 `json:"y_hi"`
	NX  int     `json:"nx"`
	NY  int     `json:"ny"`
}

// cellIndex returns the flat cell index for (x, y), or -1 when outside
// the grid.
func (g *Grid2D) cellIndex(x, y float64) int {
	if x < g.XLo || x >= g.XHi || y < g.YLo || y >= g.YHi {
		return -1
	}
	cx := int((x - g.XLo) / (g.XHi - g.XLo) * float64(g.NX))
	cy := int((y - g.YLo) / (g.YHi - g.YLo) * float64(g.NY))
	if cx >= g.NX {
		cx = g.NX - 1
	}
	if cy >= g.NY {
		cy = g.NY - 1
	}
	return cy*g.NX + cx
}

// validate checks grid parameters.
func (g *Grid2D) validate() error {
	if !(g.XLo < g.XHi) || !(g.YLo < g.YHi) {
		return errors.New("model: grid bounds must be ordered")
	}
	if g.NX < 1 || g.NY < 1 {
		return errors.New("model: grid needs at least one cell per axis")
	}
	return nil
}

// VersionGrid holds one approximate version's mean loss per grid cell.
type VersionGrid struct {
	// Name labels the version.
	Name string `json:"name"`
	// Work is the per-call work units of this version.
	Work float64 `json:"work"`
	// Loss holds the mean calibrated loss per cell (NaN: no samples).
	Loss []float64 `json:"loss"`
	// Count holds the per-cell sample counts.
	Count []int `json:"count"`
}

// FuncModel2D is the two-parameter QoS model.
type FuncModel2D struct {
	Name        string        `json:"name"`
	PreciseWork float64       `json:"precise_work"`
	Grid        Grid2D        `json:"grid"`
	Versions    []VersionGrid `json:"versions"`
}

// Calibration2D accumulates (x, y, loss) samples per version.
type Calibration2D struct {
	m *FuncModel2D
}

// NewCalibration2D prepares 2-parameter calibration for the named
// versions (increasing precision) with per-call work units, over the
// given grid.
func NewCalibration2D(name string, preciseWork float64, names []string, work []float64, grid Grid2D) (*Calibration2D, error) {
	if len(names) == 0 || len(names) != len(work) {
		return nil, errors.New("model: version names and work must be non-empty and match")
	}
	if preciseWork <= 0 {
		return nil, errors.New("model: precise work must be positive")
	}
	if err := grid.validate(); err != nil {
		return nil, err
	}
	m := &FuncModel2D{Name: name, PreciseWork: preciseWork, Grid: grid}
	cells := grid.NX * grid.NY
	for i := range names {
		if work[i] <= 0 {
			return nil, fmt.Errorf("model: non-positive work for version %q", names[i])
		}
		m.Versions = append(m.Versions, VersionGrid{
			Name: names[i], Work: work[i],
			Loss:  make([]float64, cells),
			Count: make([]int, cells),
		})
	}
	return &Calibration2D{m: m}, nil
}

// AddSample records one calibration measurement: version (index) at
// input (x, y) showed the given fractional loss. Samples outside the
// grid are counted as dropped and reported by Build.
func (c *Calibration2D) AddSample(version int, x, y, loss float64) error {
	if version < 0 || version >= len(c.m.Versions) {
		return fmt.Errorf("model: version index %d out of range", version)
	}
	if loss < 0 || math.IsNaN(loss) {
		return fmt.Errorf("model: invalid loss %v", loss)
	}
	idx := c.m.Grid.cellIndex(x, y)
	if idx < 0 {
		return nil // outside the calibrated domain: precise at runtime anyway
	}
	v := &c.m.Versions[version]
	v.Loss[idx] += loss
	v.Count[idx]++
	return nil
}

// Build finalizes the model, averaging per-cell losses. Cells without
// samples keep +Inf loss so selection falls back to precise there.
func (c *Calibration2D) Build() (*FuncModel2D, error) {
	total := 0
	for vi := range c.m.Versions {
		v := &c.m.Versions[vi]
		for i := range v.Loss {
			if v.Count[i] > 0 {
				v.Loss[i] /= float64(v.Count[i])
				total += v.Count[i]
			} else {
				v.Loss[i] = math.Inf(1)
			}
		}
	}
	if total == 0 {
		return nil, ErrNoData
	}
	return c.m, nil
}

// SelectVersion returns the cheapest version meeting the SLA at (x, y),
// or PreciseVersion when none does or the point is outside the grid.
func (m *FuncModel2D) SelectVersion(x, y, sla float64) int {
	idx := m.Grid.cellIndex(x, y)
	if idx < 0 {
		return PreciseVersion
	}
	best := PreciseVersion
	bestWork := m.PreciseWork
	for vi := range m.Versions {
		v := &m.Versions[vi]
		if v.Loss[idx] <= sla && v.Work < bestWork {
			best = vi
			bestWork = v.Work
		}
	}
	return best
}

// VersionName returns a readable label for an index.
func (m *FuncModel2D) VersionName(idx int) string {
	if idx == PreciseVersion {
		return "precise"
	}
	if idx < 0 || idx >= len(m.Versions) {
		return fmt.Sprintf("invalid(%d)", idx)
	}
	return m.Versions[idx].Name
}

// CoveredCells returns the number of grid cells in which at least one
// version qualifies at the SLA (a coverage diagnostic for developers).
func (m *FuncModel2D) CoveredCells(sla float64) int {
	cells := m.Grid.NX * m.Grid.NY
	covered := 0
	for i := 0; i < cells; i++ {
		for vi := range m.Versions {
			if m.Versions[vi].Loss[i] <= sla {
				covered++
				break
			}
		}
	}
	return covered
}

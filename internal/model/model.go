// Package model implements Green's QoS models: the data structures built
// from calibration measurements and the selection logic that turns a
// programmer-specified QoS SLA into concrete approximation parameters.
//
// The paper performs this step in MATLAB ("interpolation and curve fitting
// to construct a function from these measurements"); this package performs
// the equivalent in pure Go:
//
//   - calibration points are interpolated piecewise-linearly over a
//     monotone envelope (QoS loss is physically non-increasing in the loop
//     iteration budget, so noise is smoothed by enforcing monotonicity),
//
//   - least-squares polynomial fitting is available for smooth curves
//     (used for reporting and for the adaptive-approximation derivative),
//
//   - model inversion implements the two paper interfaces:
//
//     M                        = QoSModelLoop(QoS_SLA, static)     (1)
//     <M, Period, TargetDelta> = QoSModelLoop(QoS_SLA, adaptive)   (2)
//     <(Mi, lbi, ubi)>         = QoSModelFunc(QoS_SLA)
//
// Models serialize to JSON so the calibration phase can persist them and
// the operational phase can load them (cmd/greencal).
package model

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
)

// Common model errors.
var (
	ErrNoData        = errors.New("model: no calibration data")
	ErrUnsatisfiable = errors.New("model: no approximation level satisfies the SLA")
)

// CalPoint is one calibration measurement for one approximation level of a
// loop: terminating the loop early at Level iterations produced the given
// fractional QoS loss and consumed Work work units.
type CalPoint struct {
	Level   float64 `json:"level"`
	QoSLoss float64 `json:"qos_loss"`
	Work    float64 `json:"work"`
}

// LoopModel is the QoS model for one approximable loop.
type LoopModel struct {
	// Name identifies the approximated program unit.
	Name string `json:"name"`
	// BaseWork is the work consumed by the precise (full) loop.
	BaseWork float64 `json:"base_work"`
	// BaseLevel is the iteration count of the precise loop (used to cap
	// recalibration increases).
	BaseLevel float64 `json:"base_level"`
	// Points holds calibration measurements sorted by ascending Level.
	Points []CalPoint `json:"points"`
	// envelope is Points with QoSLoss replaced by the non-increasing
	// envelope; rebuilt on load.
	envelope []CalPoint
}

// BuildLoopModel constructs a loop model from calibration points. Points
// are sorted by level; duplicate levels are averaged. baseWork and
// baseLevel describe the precise loop.
func BuildLoopModel(name string, points []CalPoint, baseWork, baseLevel float64) (*LoopModel, error) {
	if len(points) == 0 {
		return nil, ErrNoData
	}
	if baseWork <= 0 || baseLevel <= 0 {
		return nil, errors.New("model: base work and level must be positive")
	}
	ps := append([]CalPoint(nil), points...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Level < ps[j].Level })
	// Average duplicates.
	merged := ps[:0]
	for _, p := range ps {
		if n := len(merged); n > 0 && merged[n-1].Level == p.Level {
			merged[n-1].QoSLoss = (merged[n-1].QoSLoss + p.QoSLoss) / 2
			merged[n-1].Work = (merged[n-1].Work + p.Work) / 2
			continue
		}
		merged = append(merged, p)
	}
	m := &LoopModel{Name: name, BaseWork: baseWork, BaseLevel: baseLevel,
		Points: append([]CalPoint(nil), merged...)}
	m.rebuildEnvelope()
	return m, nil
}

// rebuildEnvelope computes the non-increasing loss envelope: scanning from
// the highest level down, each point's loss is raised to at least the loss
// of the next-higher level. This encodes the physical prior that running
// more iterations cannot lose more QoS, and makes inversion well-defined
// on noisy data.
func (m *LoopModel) rebuildEnvelope() {
	m.envelope = append([]CalPoint(nil), m.Points...)
	for i := len(m.envelope) - 2; i >= 0; i-- {
		if m.envelope[i].QoSLoss < m.envelope[i+1].QoSLoss {
			m.envelope[i].QoSLoss = m.envelope[i+1].QoSLoss
		}
	}
}

// PredictLoss returns the modeled fractional QoS loss when the loop is
// terminated at the given level, by piecewise-linear interpolation on the
// monotone envelope. Levels beyond the calibrated range are clamped.
func (m *LoopModel) PredictLoss(level float64) float64 {
	return interpolate(m.envelope, level, func(p CalPoint) float64 { return p.QoSLoss })
}

// PredictWork returns the modeled work units consumed when terminating at
// the given level.
func (m *LoopModel) PredictWork(level float64) float64 {
	return interpolate(m.Points, level, func(p CalPoint) float64 { return p.Work })
}

// Speedup returns BaseWork / PredictWork(level): how many times less work
// the approximation performs.
func (m *LoopModel) Speedup(level float64) float64 {
	w := m.PredictWork(level)
	if w <= 0 {
		return math.Inf(1)
	}
	return m.BaseWork / w
}

func interpolate(ps []CalPoint, level float64, y func(CalPoint) float64) float64 {
	if len(ps) == 0 {
		return 0
	}
	if level <= ps[0].Level {
		return y(ps[0])
	}
	if level >= ps[len(ps)-1].Level {
		return y(ps[len(ps)-1])
	}
	i := sort.Search(len(ps), func(i int) bool { return ps[i].Level >= level })
	lo, hi := ps[i-1], ps[i]
	frac := (level - lo.Level) / (hi.Level - lo.Level)
	return y(lo)*(1-frac) + y(hi)*frac
}

// StaticParams implements interface (1): it returns the smallest
// early-termination iteration count M whose modeled loss satisfies the
// SLA. If even the full calibrated range exceeds the SLA, it returns
// ErrUnsatisfiable (the caller then uses the precise loop).
func (m *LoopModel) StaticParams(sla float64) (float64, error) {
	if len(m.envelope) == 0 {
		return 0, ErrNoData
	}
	if m.envelope[len(m.envelope)-1].QoSLoss > sla {
		return 0, ErrUnsatisfiable
	}
	// The envelope loss is non-increasing in level: binary-search the
	// first calibrated level meeting the SLA, then refine linearly within
	// the preceding segment.
	i := sort.Search(len(m.envelope), func(i int) bool {
		return m.envelope[i].QoSLoss <= sla
	})
	if i == 0 {
		return m.envelope[0].Level, nil
	}
	lo, hi := m.envelope[i-1], m.envelope[i]
	if lo.QoSLoss == hi.QoSLoss {
		return hi.Level, nil
	}
	frac := (lo.QoSLoss - sla) / (lo.QoSLoss - hi.QoSLoss)
	return lo.Level + frac*(hi.Level-lo.Level), nil
}

// AdaptiveParams holds the paper's interface-(2) triple.
type AdaptiveParams struct {
	// M is the minimum iteration count before adaptive termination may
	// trigger.
	M float64 `json:"m"`
	// Period is the iteration interval at which QoS improvement is
	// sampled.
	Period float64 `json:"period"`
	// TargetDelta is the QoS improvement per period required to continue
	// iterating; when the measured improvement falls to TargetDelta or
	// below, the loop terminates (the law of diminishing returns).
	TargetDelta float64 `json:"target_delta"`
}

// AdaptiveParamsFor implements interface (2). The static M for the SLA
// anchors the triple: the floor is half the static M (never terminate
// before substantial work is done), the period is the calibration knot
// spacing around M, and the target delta is the modeled QoS improvement
// obtained by running one more period at M — beyond that point the model
// says further iterations buy less than the SLA-relevant improvement rate.
func (m *LoopModel) AdaptiveParamsFor(sla float64) (AdaptiveParams, error) {
	mstatic, err := m.StaticParams(sla)
	if err != nil {
		return AdaptiveParams{}, err
	}
	period := m.knotSpacingNear(mstatic)
	lossAt := m.PredictLoss(mstatic)
	lossNext := m.PredictLoss(mstatic + period)
	delta := lossAt - lossNext // improvement from one more period
	if delta <= 0 {
		// mstatic sits at (or beyond) the last calibrated knot, where the
		// clamped interpolation is flat; fall back to the backward slope,
		// the improvement rate *approaching* mstatic, which bounds the
		// forward improvement from above for a convex loss curve.
		delta = m.PredictLoss(mstatic-period) - lossAt
	}
	if delta < 0 {
		delta = 0
	}
	return AdaptiveParams{M: mstatic / 2, Period: period, TargetDelta: delta}, nil
}

// knotSpacingNear returns the calibration level spacing around the given
// level, falling back to 1/10 of the calibrated span for degenerate data.
func (m *LoopModel) knotSpacingNear(level float64) float64 {
	ps := m.Points
	if len(ps) < 2 {
		return math.Max(1, level/10)
	}
	i := sort.Search(len(ps), func(i int) bool { return ps[i].Level >= level })
	if i == 0 {
		i = 1
	}
	if i >= len(ps) {
		i = len(ps) - 1
	}
	d := ps[i].Level - ps[i-1].Level
	if d <= 0 {
		return math.Max(1, (ps[len(ps)-1].Level-ps[0].Level)/10)
	}
	return d
}

// Levels returns the calibrated levels in ascending order. Recalibration
// uses these as the discrete accuracy ladder.
func (m *LoopModel) Levels() []float64 {
	ls := make([]float64, len(m.Points))
	for i, p := range m.Points {
		ls[i] = p.Level
	}
	return ls
}

// MarshalJSON / UnmarshalJSON round-trip the model, rebuilding the
// envelope on load.
func (m *LoopModel) MarshalJSON() ([]byte, error) {
	type plain LoopModel
	return json.Marshal((*plain)(m))
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *LoopModel) UnmarshalJSON(data []byte) error {
	type plain LoopModel
	if err := json.Unmarshal(data, (*plain)(m)); err != nil {
		return err
	}
	if len(m.Points) == 0 {
		return ErrNoData
	}
	sort.Slice(m.Points, func(i, j int) bool { return m.Points[i].Level < m.Points[j].Level })
	m.rebuildEnvelope()
	return nil
}

// FuncSample is one calibration measurement of a function version: calling
// the approximate version at input X produced the given fractional QoS
// loss relative to the precise version.
type FuncSample struct {
	X    float64 `json:"x"`
	Loss float64 `json:"loss"`
}

// VersionCurve is the calibration curve of one approximate function
// version.
type VersionCurve struct {
	// Name labels the version, e.g. "exp(3)".
	Name string `json:"name"`
	// Work is the per-call work units of this version; SpeedupFactor
	// against the precise version is PreciseWork/Work.
	Work float64 `json:"work"`
	// Samples sorted by ascending X.
	Samples []FuncSample `json:"samples"`
}

// LossAt interpolates the version's loss at input x (clamped at the
// calibrated range ends).
func (v *VersionCurve) LossAt(x float64) float64 {
	ps := v.Samples
	if len(ps) == 0 {
		return math.Inf(1)
	}
	if x <= ps[0].X {
		return ps[0].Loss
	}
	if x >= ps[len(ps)-1].X {
		return ps[len(ps)-1].Loss
	}
	i := sort.Search(len(ps), func(i int) bool { return ps[i].X >= x })
	lo, hi := ps[i-1], ps[i]
	frac := (x - lo.X) / (hi.X - lo.X)
	return lo.Loss*(1-frac) + hi.Loss*frac
}

// FuncModel is the QoS model for one approximable function: the
// calibration curves of each approximate version, ordered by increasing
// precision (the paper's function-pointer-array order).
type FuncModel struct {
	Name string `json:"name"`
	// PreciseWork is the per-call work units of the precise function.
	PreciseWork float64 `json:"precise_work"`
	// Versions in increasing precision order.
	Versions []VersionCurve `json:"versions"`
}

// Range selects version Version (index into Versions) for inputs in
// [Lo, Hi). Version == PreciseVersion means "use the precise function".
type Range struct {
	Version int     `json:"version"`
	Lo      float64 `json:"lo"`
	Hi      float64 `json:"hi"`
}

// PreciseVersion is the sentinel Range.Version denoting the precise
// function.
const PreciseVersion = -1

// BuildFuncModel validates and constructs a function model.
func BuildFuncModel(name string, preciseWork float64, versions []VersionCurve) (*FuncModel, error) {
	if len(versions) == 0 {
		return nil, ErrNoData
	}
	if preciseWork <= 0 {
		return nil, errors.New("model: precise work must be positive")
	}
	for i := range versions {
		if len(versions[i].Samples) == 0 {
			return nil, fmt.Errorf("model: version %q has no samples", versions[i].Name)
		}
		if versions[i].Work <= 0 {
			return nil, fmt.Errorf("model: version %q has non-positive work", versions[i].Name)
		}
		sort.Slice(versions[i].Samples, func(a, b int) bool {
			return versions[i].Samples[a].X < versions[i].Samples[b].X
		})
	}
	return &FuncModel{Name: name, PreciseWork: preciseWork,
		Versions: append([]VersionCurve(nil), versions...)}, nil
}

// Ranges implements the paper's QoSModelFunc interface: it partitions the
// calibrated input domain into ranges and, for each, selects the cheapest
// (least work) version whose modeled loss satisfies the SLA; where no
// version qualifies, the precise function is selected. Versions that are
// never selected anywhere are thereby discarded, reproducing the paper's
// rejection of exp(5)/exp(6) for not being competitive.
func (m *FuncModel) Ranges(sla float64) []Range {
	grid := m.sampleGrid()
	if len(grid) == 0 {
		return nil
	}
	// Choose per grid knot.
	choice := make([]int, len(grid))
	for i, x := range grid {
		choice[i] = m.bestVersionAt(x, sla)
	}
	// Merge adjacent knots with the same choice into ranges. Each range
	// covers [knot_i, knot_{i+1}) boundaries at segment midpoints so the
	// selection switches halfway between differently-choosing knots.
	var out []Range
	start := grid[0]
	for i := 1; i <= len(grid); i++ {
		if i < len(grid) && choice[i] == choice[i-1] {
			continue
		}
		var hi float64
		if i == len(grid) {
			hi = grid[len(grid)-1]
		} else {
			hi = (grid[i-1] + grid[i]) / 2
		}
		out = append(out, Range{Version: choice[i-1], Lo: start, Hi: hi})
		start = hi
	}
	// Extend the outermost ranges to infinity only if they selected the
	// precise version; outside the calibrated domain the model knows
	// nothing, so approximation is not allowed there (the synthesized
	// QoS_Fn_Approx in the paper likewise returns false outside the
	// calibrated argument ranges).
	return out
}

// sampleGrid returns the union of all versions' sample x positions.
func (m *FuncModel) sampleGrid() []float64 {
	set := make(map[float64]struct{})
	for i := range m.Versions {
		for _, s := range m.Versions[i].Samples {
			set[s.X] = struct{}{}
		}
	}
	grid := make([]float64, 0, len(set))
	for x := range set {
		grid = append(grid, x)
	}
	sort.Float64s(grid)
	return grid
}

// bestVersionAt returns the index of the cheapest version meeting the SLA
// at x, or PreciseVersion.
func (m *FuncModel) bestVersionAt(x, sla float64) int {
	best := PreciseVersion
	bestWork := m.PreciseWork
	for i := range m.Versions {
		v := &m.Versions[i]
		if v.LossAt(x) <= sla && v.Work < bestWork {
			best = i
			bestWork = v.Work
		}
	}
	return best
}

// VersionName returns a human-readable name for a version index, including
// the precise sentinel.
func (m *FuncModel) VersionName(idx int) string {
	if idx == PreciseVersion {
		return "precise"
	}
	if idx < 0 || idx >= len(m.Versions) {
		return fmt.Sprintf("invalid(%d)", idx)
	}
	return m.Versions[idx].Name
}

// SpeedupOf returns PreciseWork/Work for a version index (1 for the
// precise sentinel).
func (m *FuncModel) SpeedupOf(idx int) float64 {
	if idx == PreciseVersion || idx < 0 || idx >= len(m.Versions) {
		return 1
	}
	return m.PreciseWork / m.Versions[idx].Work
}

// PolyFit fits a polynomial of the given degree to (xs, ys) by ordinary
// least squares (normal equations solved by Gaussian elimination with
// partial pivoting) and returns the coefficients c[0..degree], lowest
// order first. It is the curve-fitting half of the paper's MATLAB step and
// is used for smooth reporting curves and derivative estimates.
func PolyFit(xs, ys []float64, degree int) ([]float64, error) {
	if len(xs) != len(ys) {
		return nil, errors.New("model: mismatched fit inputs")
	}
	n := degree + 1
	if len(xs) < n {
		return nil, fmt.Errorf("model: need at least %d points for degree %d", n, degree)
	}
	// Normal equations: A^T A c = A^T y with A[i][j] = xs[i]^j.
	ata := make([][]float64, n)
	aty := make([]float64, n)
	for i := range ata {
		ata[i] = make([]float64, n)
	}
	for k := range xs {
		pow := make([]float64, n)
		pow[0] = 1
		for j := 1; j < n; j++ {
			pow[j] = pow[j-1] * xs[k]
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				ata[i][j] += pow[i] * pow[j]
			}
			aty[i] += pow[i] * ys[k]
		}
	}
	return solveLinear(ata, aty)
}

// solveLinear solves ax = b by Gaussian elimination with partial pivoting.
// a and b are modified.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, errors.New("model: singular system in fit")
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < n; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	return x, nil
}

// EvalPoly evaluates coefficients (lowest order first) at x.
func EvalPoly(cs []float64, x float64) float64 {
	r := 0.0
	for i := len(cs) - 1; i >= 0; i-- {
		r = r*x + cs[i]
	}
	return r
}

package model

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func loopPoints() []CalPoint {
	// Loss decays with level; work grows linearly.
	return []CalPoint{
		{Level: 100, QoSLoss: 0.10, Work: 100},
		{Level: 200, QoSLoss: 0.05, Work: 200},
		{Level: 400, QoSLoss: 0.02, Work: 400},
		{Level: 800, QoSLoss: 0.01, Work: 800},
		{Level: 1600, QoSLoss: 0.002, Work: 1600},
	}
}

func mustLoop(t *testing.T) *LoopModel {
	t.Helper()
	m, err := BuildLoopModel("test", loopPoints(), 3200, 3200)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBuildLoopModelErrors(t *testing.T) {
	if _, err := BuildLoopModel("x", nil, 1, 1); err != ErrNoData {
		t.Errorf("empty points err = %v, want ErrNoData", err)
	}
	if _, err := BuildLoopModel("x", loopPoints(), 0, 1); err == nil {
		t.Error("zero base work accepted")
	}
	if _, err := BuildLoopModel("x", loopPoints(), 1, 0); err == nil {
		t.Error("zero base level accepted")
	}
}

func TestBuildLoopModelSortsAndMergesDuplicates(t *testing.T) {
	pts := []CalPoint{
		{Level: 200, QoSLoss: 0.06, Work: 210},
		{Level: 100, QoSLoss: 0.10, Work: 100},
		{Level: 200, QoSLoss: 0.04, Work: 190},
	}
	m, err := BuildLoopModel("dup", pts, 1000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Points) != 2 {
		t.Fatalf("points = %d, want 2 (duplicates merged)", len(m.Points))
	}
	if m.Points[0].Level != 100 || m.Points[1].Level != 200 {
		t.Errorf("levels not sorted: %+v", m.Points)
	}
	if math.Abs(m.Points[1].QoSLoss-0.05) > 1e-12 {
		t.Errorf("duplicate loss not averaged: %v", m.Points[1].QoSLoss)
	}
	if math.Abs(m.Points[1].Work-200) > 1e-12 {
		t.Errorf("duplicate work not averaged: %v", m.Points[1].Work)
	}
}

func TestPredictLossInterpolatesAndClamps(t *testing.T) {
	m := mustLoop(t)
	if got := m.PredictLoss(100); got != 0.10 {
		t.Errorf("loss at first knot = %v, want 0.10", got)
	}
	if got := m.PredictLoss(150); math.Abs(got-0.075) > 1e-12 {
		t.Errorf("interpolated loss = %v, want 0.075", got)
	}
	if got := m.PredictLoss(10); got != 0.10 {
		t.Errorf("below-range loss = %v, want clamp to 0.10", got)
	}
	if got := m.PredictLoss(99999); got != 0.002 {
		t.Errorf("above-range loss = %v, want clamp to 0.002", got)
	}
}

func TestMonotoneEnvelopeSmoothsNoise(t *testing.T) {
	pts := []CalPoint{
		{Level: 100, QoSLoss: 0.10, Work: 100},
		{Level: 200, QoSLoss: 0.02, Work: 200}, // noisy dip
		{Level: 300, QoSLoss: 0.05, Work: 300}, // bounce back up
		{Level: 400, QoSLoss: 0.01, Work: 400},
	}
	m, err := BuildLoopModel("noisy", pts, 1000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Envelope raises the dip at 200 to 0.05 so loss is non-increasing.
	if got := m.PredictLoss(200); got != 0.05 {
		t.Errorf("envelope loss at 200 = %v, want 0.05", got)
	}
	prev := math.Inf(1)
	for l := 100.0; l <= 400; l += 10 {
		cur := m.PredictLoss(l)
		if cur > prev+1e-12 {
			t.Fatalf("envelope not monotone at level %v: %v > %v", l, cur, prev)
		}
		prev = cur
	}
}

func TestSpeedup(t *testing.T) {
	m := mustLoop(t)
	if got := m.Speedup(100); math.Abs(got-32) > 1e-9 {
		t.Errorf("speedup at 100 = %v, want 32", got)
	}
	if got := m.Speedup(1600); math.Abs(got-2) > 1e-9 {
		t.Errorf("speedup at 1600 = %v, want 2", got)
	}
}

func TestStaticParams(t *testing.T) {
	m := mustLoop(t)
	// SLA exactly at a knot.
	got, err := m.StaticParams(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-200) > 1e-9 {
		t.Errorf("M(0.05) = %v, want 200", got)
	}
	// SLA between knots: interpolated level between 200 (0.05) and 400
	// (0.02): sla=0.035 -> halfway = 300.
	got, err = m.StaticParams(0.035)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-300) > 1e-9 {
		t.Errorf("M(0.035) = %v, want 300", got)
	}
	// Very permissive SLA: the first knot suffices.
	got, err = m.StaticParams(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 100 {
		t.Errorf("M(0.5) = %v, want 100", got)
	}
	// Unsatisfiable SLA.
	if _, err := m.StaticParams(0.001); err != ErrUnsatisfiable {
		t.Errorf("err = %v, want ErrUnsatisfiable", err)
	}
}

func TestStaticParamsMonotoneInSLA(t *testing.T) {
	m := mustLoop(t)
	prev := math.Inf(1)
	for sla := 0.002; sla <= 0.2; sla += 0.002 {
		lvl, err := m.StaticParams(sla)
		if err != nil {
			t.Fatalf("sla %v: %v", sla, err)
		}
		if lvl > prev+1e-9 {
			t.Fatalf("M not non-increasing in SLA at %v: %v > %v", sla, lvl, prev)
		}
		prev = lvl
	}
}

func TestAdaptiveParams(t *testing.T) {
	m := mustLoop(t)
	ap, err := m.AdaptiveParamsFor(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if ap.M <= 0 || ap.M >= 200 {
		t.Errorf("adaptive floor M = %v, want in (0, 200)", ap.M)
	}
	if ap.Period <= 0 {
		t.Errorf("period = %v, want > 0", ap.Period)
	}
	if ap.TargetDelta < 0 {
		t.Errorf("target delta = %v, want >= 0", ap.TargetDelta)
	}
	if _, err := m.AdaptiveParamsFor(0.0001); err != ErrUnsatisfiable {
		t.Errorf("err = %v, want ErrUnsatisfiable", err)
	}
}

func TestLevels(t *testing.T) {
	m := mustLoop(t)
	ls := m.Levels()
	if len(ls) != 5 || ls[0] != 100 || ls[4] != 1600 {
		t.Errorf("Levels = %v", ls)
	}
}

func TestLoopModelJSONRoundTrip(t *testing.T) {
	m := mustLoop(t)
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var m2 LoopModel
	if err := json.Unmarshal(data, &m2); err != nil {
		t.Fatal(err)
	}
	if m2.Name != "test" || m2.BaseWork != 3200 {
		t.Errorf("round trip lost metadata: %+v", m2)
	}
	// Envelope must be rebuilt: inversion should still work.
	lvl, err := m2.StaticParams(0.05)
	if err != nil || math.Abs(lvl-200) > 1e-9 {
		t.Errorf("round-tripped StaticParams = (%v, %v)", lvl, err)
	}
}

func TestLoopModelUnmarshalRejectsEmpty(t *testing.T) {
	var m LoopModel
	if err := json.Unmarshal([]byte(`{"name":"x","points":[]}`), &m); err == nil {
		t.Error("empty points accepted on unmarshal")
	}
}

func funcModelFixture(t *testing.T) *FuncModel {
	t.Helper()
	// Two approximate versions of a function of x in [0, 2]:
	// v0 (cheap): loss grows with x; v1 (mid): loss grows slower.
	v0 := VersionCurve{Name: "f(3)", Work: 4, Samples: []FuncSample{
		{X: 0, Loss: 0.001}, {X: 0.5, Loss: 0.005}, {X: 1.0, Loss: 0.03},
		{X: 1.5, Loss: 0.2}, {X: 2.0, Loss: 0.6},
	}}
	v1 := VersionCurve{Name: "f(4)", Work: 5, Samples: []FuncSample{
		{X: 0, Loss: 0.0001}, {X: 0.5, Loss: 0.001}, {X: 1.0, Loss: 0.008},
		{X: 1.5, Loss: 0.04}, {X: 2.0, Loss: 0.2},
	}}
	m, err := BuildFuncModel("f", 18, []VersionCurve{v0, v1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBuildFuncModelErrors(t *testing.T) {
	if _, err := BuildFuncModel("f", 18, nil); err != ErrNoData {
		t.Errorf("err = %v, want ErrNoData", err)
	}
	if _, err := BuildFuncModel("f", 0, []VersionCurve{{Name: "v", Work: 1,
		Samples: []FuncSample{{X: 0, Loss: 0}}}}); err == nil {
		t.Error("zero precise work accepted")
	}
	if _, err := BuildFuncModel("f", 18, []VersionCurve{{Name: "v", Work: 1}}); err == nil {
		t.Error("version without samples accepted")
	}
	if _, err := BuildFuncModel("f", 18, []VersionCurve{{Name: "v", Work: 0,
		Samples: []FuncSample{{X: 0, Loss: 0}}}}); err == nil {
		t.Error("zero-work version accepted")
	}
}

func TestVersionCurveLossAt(t *testing.T) {
	v := VersionCurve{Name: "v", Work: 1, Samples: []FuncSample{
		{X: 0, Loss: 0.1}, {X: 1, Loss: 0.3},
	}}
	if got := v.LossAt(0.5); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("LossAt(0.5) = %v, want 0.2", got)
	}
	if got := v.LossAt(-5); got != 0.1 {
		t.Errorf("clamp low = %v, want 0.1", got)
	}
	if got := v.LossAt(5); got != 0.3 {
		t.Errorf("clamp high = %v, want 0.3", got)
	}
	empty := VersionCurve{}
	if got := empty.LossAt(0); !math.IsInf(got, 1) {
		t.Errorf("empty curve loss = %v, want +Inf", got)
	}
}

func TestFuncModelRanges(t *testing.T) {
	m := funcModelFixture(t)
	// SLA 0.01: near x=0 the cheap version qualifies; mid x only the more
	// precise version; at large x neither (precise).
	ranges := m.Ranges(0.01)
	if len(ranges) < 2 {
		t.Fatalf("ranges = %+v, want multiple segments", ranges)
	}
	// The first range must choose the cheapest version 0.
	if ranges[0].Version != 0 {
		t.Errorf("first range version = %s, want f(3)", m.VersionName(ranges[0].Version))
	}
	// The final range at x=2 must be precise (losses 0.6/0.2 > 0.01).
	last := ranges[len(ranges)-1]
	if last.Version != PreciseVersion {
		t.Errorf("last range version = %s, want precise", m.VersionName(last.Version))
	}
	// Ranges must tile the calibrated domain contiguously.
	for i := 1; i < len(ranges); i++ {
		if ranges[i].Lo != ranges[i-1].Hi {
			t.Errorf("gap between ranges %d and %d: %+v", i-1, i, ranges)
		}
	}
	if ranges[0].Lo != 0 || last.Hi != 2 {
		t.Errorf("domain coverage wrong: %+v", ranges)
	}
}

func TestFuncModelRangesImpossibleSLA(t *testing.T) {
	m := funcModelFixture(t)
	for _, r := range m.Ranges(0.000001) {
		if r.Version != PreciseVersion {
			t.Errorf("impossible SLA selected version %s over %+v",
				m.VersionName(r.Version), r)
		}
	}
}

func TestFuncModelRangesGenerousSLA(t *testing.T) {
	m := funcModelFixture(t)
	ranges := m.Ranges(1.0)
	// Everything satisfiable by the cheapest version.
	if len(ranges) != 1 || ranges[0].Version != 0 {
		t.Errorf("generous SLA ranges = %+v", ranges)
	}
}

func TestVersionNameAndSpeedup(t *testing.T) {
	m := funcModelFixture(t)
	if m.VersionName(PreciseVersion) != "precise" {
		t.Error("precise name wrong")
	}
	if m.VersionName(0) != "f(3)" {
		t.Error("version 0 name wrong")
	}
	if m.VersionName(7) == "f(3)" {
		t.Error("invalid index must not alias a real version")
	}
	if got := m.SpeedupOf(0); math.Abs(got-4.5) > 1e-12 {
		t.Errorf("SpeedupOf(0) = %v, want 4.5", got)
	}
	if got := m.SpeedupOf(PreciseVersion); got != 1 {
		t.Errorf("SpeedupOf(precise) = %v, want 1", got)
	}
}

func TestPolyFitRecoversPolynomial(t *testing.T) {
	// y = 2 - 3x + 0.5x^2
	want := []float64{2, -3, 0.5}
	xs := []float64{-2, -1, 0, 1, 2, 3}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = EvalPoly(want, x)
	}
	got, err := PolyFit(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-8 {
			t.Errorf("coef %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPolyFitErrors(t *testing.T) {
	if _, err := PolyFit([]float64{1, 2}, []float64{1}, 1); err == nil {
		t.Error("mismatched inputs accepted")
	}
	if _, err := PolyFit([]float64{1}, []float64{1}, 2); err == nil {
		t.Error("underdetermined fit accepted")
	}
	// All x identical -> singular normal equations for degree >= 1.
	if _, err := PolyFit([]float64{1, 1, 1}, []float64{1, 2, 3}, 1); err == nil {
		t.Error("singular system accepted")
	}
}

// Property: for random monotone-decreasing calibration data, StaticParams
// always returns a level whose predicted loss meets the SLA.
func TestStaticParamsSatisfiesSLAProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(10)
		pts := make([]CalPoint, n)
		loss := 0.5 * rng.Float64()
		for i := 0; i < n; i++ {
			pts[i] = CalPoint{
				Level:   float64((i + 1) * 100),
				QoSLoss: loss,
				Work:    float64((i + 1) * 100),
			}
			loss *= 0.3 + 0.6*rng.Float64() // decay
		}
		m, err := BuildLoopModel("prop", pts, float64(n*200), float64(n*200))
		if err != nil {
			t.Fatal(err)
		}
		sla := pts[n-1].QoSLoss + rng.Float64()*0.5
		lvl, err := m.StaticParams(sla)
		if err != nil {
			t.Fatalf("sla %v unsatisfiable though last loss %v", sla, pts[n-1].QoSLoss)
		}
		if pred := m.PredictLoss(lvl); pred > sla+1e-9 {
			t.Fatalf("predicted loss %v at level %v exceeds sla %v", pred, lvl, sla)
		}
	}
}

// Property: Ranges always tiles the calibrated domain without gaps or
// overlap and never selects an out-of-bounds version.
func TestRangesTileProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		nv := 1 + rng.Intn(3)
		versions := make([]VersionCurve, nv)
		for v := 0; v < nv; v++ {
			ns := 2 + rng.Intn(6)
			samples := make([]FuncSample, ns)
			for s := 0; s < ns; s++ {
				samples[s] = FuncSample{X: float64(s), Loss: rng.Float64() * 0.2}
			}
			versions[v] = VersionCurve{
				Name: "v", Work: 1 + rng.Float64()*5, Samples: samples,
			}
		}
		m, err := BuildFuncModel("prop", 20, versions)
		if err != nil {
			t.Fatal(err)
		}
		sla := rng.Float64() * 0.25
		ranges := m.Ranges(sla)
		if len(ranges) == 0 {
			t.Fatal("no ranges for non-empty model")
		}
		for i, r := range ranges {
			if r.Version != PreciseVersion && (r.Version < 0 || r.Version >= nv) {
				t.Fatalf("bad version in range: %+v", r)
			}
			if i > 0 && ranges[i].Lo != ranges[i-1].Hi {
				t.Fatalf("ranges not contiguous: %+v", ranges)
			}
			if r.Hi < r.Lo {
				t.Fatalf("inverted range: %+v", r)
			}
		}
	}
}

// Property: quick.Check that EvalPoly(PolyFit(points)) interpolates exact
// polynomial data.
func TestPolyFitInterpolationProperty(t *testing.T) {
	f := func(c0, c1 int8) bool {
		want := []float64{float64(c0), float64(c1)}
		xs := []float64{0, 1, 2, 3}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = EvalPoly(want, x)
		}
		got, err := PolyFit(xs, ys, 1)
		if err != nil {
			return false
		}
		return math.Abs(got[0]-want[0]) < 1e-6 && math.Abs(got[1]-want[1]) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

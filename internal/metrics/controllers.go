package metrics

import "green/internal/core"

// Per-controller observability rows. A serving process hosts one or more
// approximation controllers through a core.Registry; /stats-style
// surfaces render every registered controller uniformly — level, loss,
// counters, breaker health — instead of hard-wiring fields for one loop.

// ControllerStats is the JSON-ready snapshot of one registered
// controller.
type ControllerStats struct {
	// Name is the controller's registered name.
	Name string `json:"name"`
	// SLA is the controller's configured QoS loss bound.
	SLA float64 `json:"sla"`
	// Level is the controller's scalar approximation level (iteration
	// threshold M for loops, the precision offset for function ladders).
	Level float64 `json:"level"`
	// Executions and Monitored are the controller's runtime counters.
	Executions int64 `json:"executions"`
	Monitored  int64 `json:"monitored"`
	// MeanLoss is the mean observed QoS loss over monitored executions.
	MeanLoss float64 `json:"mean_loss"`
	// SampleInterval is the live Sample_QoS interval (zero when
	// monitoring is disabled).
	SampleInterval int64 `json:"sample_interval"`
	// LastRecalSeq/LastRecalAction identify the most recent monitored
	// execution whose observation ran the recalibration policy (zero /
	// "none" before any).
	LastRecalSeq    int64  `json:"last_recal_seq"`
	LastRecalAction string `json:"last_recal_action"`
	// ApproxEnabled reports whether approximation is currently active.
	ApproxEnabled bool `json:"approx_enabled"`
	// Selector is the Select-stage snapshot: whether a per-input
	// selector is installed and its hit/fallback/override/correction
	// counters.
	Selector core.SelectorStats `json:"selector"`
	// Breaker is the controller's panic-containment breaker snapshot.
	Breaker core.BreakerStats `json:"breaker"`
}

// CollectController snapshots one controller.
func CollectController(c core.Controller) ControllerStats {
	executions, monitored, meanLoss := c.Stats()
	recalSeq, recalAct := c.LastRecalibration()
	return ControllerStats{
		Name:            c.Name(),
		SLA:             c.SLA(),
		Level:           c.Level(),
		Executions:      executions,
		Monitored:       monitored,
		MeanLoss:        meanLoss,
		SampleInterval:  c.SampleInterval(),
		LastRecalSeq:    recalSeq,
		LastRecalAction: recalAct.String(),
		ApproxEnabled:   c.ApproxEnabled(),
		Selector:        c.SelectorStats(),
		Breaker:         c.Breaker(),
	}
}

// CollectControllers snapshots every controller registered in reg, in
// registration order (deterministic output for reports and tests).
func CollectControllers(reg *core.Registry) []ControllerStats {
	cs := reg.Controllers()
	out := make([]ControllerStats, 0, len(cs))
	for _, c := range cs {
		out = append(out, CollectController(c))
	}
	return out
}

package metrics

import (
	"testing"

	"green/internal/core"
	"green/internal/model"
)

// flatQoS drives the loop fixture with a constant observed loss.
type flatQoS struct{ loss float64 }

func (q *flatQoS) Record(int)       {}
func (q *flatQoS) Loss(int) float64 { return q.loss }

func testRegistry(t *testing.T) (*core.Registry, *core.Loop) {
	t.Helper()
	m, err := model.BuildLoopModel("stats-loop", []model.CalPoint{
		{Level: 100, QoSLoss: 0.2, Work: 100}, {Level: 200, QoSLoss: 0.05, Work: 200}, {Level: 400, QoSLoss: 0, Work: 400},
	}, 400, 400)
	if err != nil {
		t.Fatal(err)
	}
	l, err := core.NewLoop(core.LoopConfig{Name: "stats-loop", Model: m, SLA: 0.1, SampleInterval: 1})
	if err != nil {
		t.Fatal(err)
	}
	fm, err := model.BuildFuncModel("stats-func", 8, []model.VersionCurve{
		{Name: "fast", Work: 2, Samples: []model.FuncSample{{X: 0, Loss: 0.01}, {X: 10, Loss: 0.01}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := core.NewFunc(core.FuncConfig{
		Name: "stats-func", Model: fm, SLA: 0.1, SampleInterval: 1,
	}, func(x float64) float64 { return x * x },
		[]core.Fn{func(x float64) float64 { return x * x * 1.01 }})
	if err != nil {
		t.Fatal(err)
	}
	reg := core.NewRegistry()
	if err := reg.Register(l); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(f); err != nil {
		t.Fatal(err)
	}
	return reg, l
}

func TestCollectControllers(t *testing.T) {
	reg, l := testRegistry(t)
	rows := CollectControllers(reg)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if rows[0].Name != "stats-loop" || rows[1].Name != "stats-func" {
		t.Errorf("row order = [%s %s], want registration order", rows[0].Name, rows[1].Name)
	}
	if rows[0].SLA != 0.1 || rows[0].Level != l.Level() {
		t.Errorf("loop row = %+v, want SLA 0.1 level %v", rows[0], l.Level())
	}
	for _, r := range rows {
		if !r.ApproxEnabled {
			t.Errorf("%s: ApproxEnabled = false on a fresh controller", r.Name)
		}
		if r.Breaker.State != core.BreakerClosed {
			t.Errorf("%s: breaker %v, want closed", r.Name, r.Breaker.State)
		}
		if r.Executions != 0 || r.Monitored != 0 {
			t.Errorf("%s: counters (%d,%d) on a fresh controller", r.Name, r.Executions, r.Monitored)
		}
	}
}

func TestCollectControllersTracksRuntime(t *testing.T) {
	reg, l := testRegistry(t)
	for run := 0; run < 5; run++ {
		e, _ := l.Begin(&flatQoS{loss: 0.02})
		i := 0
		for ; i < 400 && e.Continue(i); i++ {
		}
		e.Finish(i)
	}
	rows := CollectControllers(reg)
	if rows[0].Executions != 5 {
		t.Errorf("loop executions = %d, want 5", rows[0].Executions)
	}
	if rows[0].Monitored == 0 {
		t.Error("loop monitored = 0 with SampleInterval 1")
	}
}

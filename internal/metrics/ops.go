package metrics

import "sync/atomic"

// Operational-health counters for the serving layer. Where the rest of
// this package measures the *quality* dimension of the SLA (QoS loss),
// OpsCounters measures the *availability* dimension the resilience
// layer adds: requests shed instead of queued, requests served degraded
// at their deadline, snapshot persistence health, and rejected state
// restores. The counters are plain atomics so the serving hot path pays
// one uncontended add per event, and a Snapshot is safe to take from
// any goroutine.
type OpsCounters struct {
	// Shed counts requests rejected by the in-flight cap (503 +
	// Retry-After).
	Shed atomic.Int64
	// DeadlinePartial counts requests whose scan was cut short at the
	// request deadline and served from partial results.
	DeadlinePartial atomic.Int64
	// Degraded counts responses served at reduced quality but still 200:
	// on a worker, deadline-cut partial scans; on a coordinator, pages
	// merged from fewer shards than the fleet holds (partial coverage at
	// or above quorum). Sheds and timeouts were already counted; this
	// closes the observability gap for partial-quality successes.
	Degraded atomic.Int64
	// BudgetPushes counts accepted per-shard budget updates (the fleet
	// control plane's POST /budget on workers, successful pushes on the
	// coordinator).
	BudgetPushes atomic.Int64
	// SnapshotSaves counts successful state snapshots.
	SnapshotSaves atomic.Int64
	// SnapshotErrors counts failed snapshot writes.
	SnapshotErrors atomic.Int64
	// RestoreRejected counts startup snapshots rejected as corrupt,
	// foreign, or implausible.
	RestoreRejected atomic.Int64
	// QueryCacheHits counts /search requests answered from the preparsed
	// query cache (the zero-alloc warm path).
	QueryCacheHits atomic.Int64
	// QueryCacheMisses counts /search requests that had to parse their
	// query (cold or evicted entries, or caching disabled).
	QueryCacheMisses atomic.Int64
}

// OpsSnapshot is a point-in-time copy of OpsCounters, shaped for JSON
// surfaces like /stats.
type OpsSnapshot struct {
	Shed             int64 `json:"shed"`
	DeadlinePartial  int64 `json:"deadline_partial"`
	Degraded         int64 `json:"degraded"`
	BudgetPushes     int64 `json:"budget_pushes"`
	SnapshotSaves    int64 `json:"snapshot_saves"`
	SnapshotErrors   int64 `json:"snapshot_errors"`
	RestoreRejected  int64 `json:"restore_rejected"`
	QueryCacheHits   int64 `json:"query_cache_hits"`
	QueryCacheMisses int64 `json:"query_cache_misses"`
}

// Snapshot copies the counters.
func (c *OpsCounters) Snapshot() OpsSnapshot {
	return OpsSnapshot{
		Shed:             c.Shed.Load(),
		DeadlinePartial:  c.DeadlinePartial.Load(),
		Degraded:         c.Degraded.Load(),
		BudgetPushes:     c.BudgetPushes.Load(),
		SnapshotSaves:    c.SnapshotSaves.Load(),
		SnapshotErrors:   c.SnapshotErrors.Load(),
		RestoreRejected:  c.RestoreRejected.Load(),
		QueryCacheHits:   c.QueryCacheHits.Load(),
		QueryCacheMisses: c.QueryCacheMisses.Load(),
	}
}

// Package metrics implements the QoS (quality of service/solution) loss
// metrics used by the Green evaluation:
//
//   - normalized scalar and vector differences (blackscholes, DFT, CGA),
//   - mean normalized pixel difference for rendered images (252.eon),
//   - top-N document set/order comparison (Bing Search).
//
// All metrics follow the paper's convention: the result is a *loss*
// in [0, +inf), where 0 means the approximate output is identical to the
// precise output. Losses are fractional (0.01 == 1%); callers that report
// percentages multiply by 100 at the edge.
package metrics

import (
	"errors"
	"math"
)

// ErrLengthMismatch is returned when two outputs being compared have
// different shapes.
var ErrLengthMismatch = errors.New("metrics: length mismatch")

// NormDiff returns |approx-precise| / max(|precise|, eps): the normalized
// difference of two scalars. eps guards the division when the precise value
// is (near) zero; a typical eps is 1e-12.
func NormDiff(precise, approx, eps float64) float64 {
	denom := math.Abs(precise)
	if denom < eps {
		denom = eps
	}
	return math.Abs(approx-precise) / denom
}

// MeanNormDiff returns the mean of per-element normalized differences of
// two vectors. This is the DFT QoS metric from the paper ("normalized
// difference in each output sample").
func MeanNormDiff(precise, approx []float64, eps float64) (float64, error) {
	if len(precise) != len(approx) {
		return 0, ErrLengthMismatch
	}
	if len(precise) == 0 {
		return 0, nil
	}
	sum := 0.0
	for i := range precise {
		sum += NormDiff(precise[i], approx[i], eps)
	}
	return sum / float64(len(precise)), nil
}

// RMSNormDiff returns the root-mean-square of the element-wise differences,
// normalized by the RMS magnitude of the precise vector. It is a smoother
// alternative to MeanNormDiff for signals that cross zero.
func RMSNormDiff(precise, approx []float64) (float64, error) {
	if len(precise) != len(approx) {
		return 0, ErrLengthMismatch
	}
	if len(precise) == 0 {
		return 0, nil
	}
	var num, den float64
	for i := range precise {
		d := approx[i] - precise[i]
		num += d * d
		den += precise[i] * precise[i]
	}
	if den == 0 {
		if num == 0 {
			return 0, nil
		}
		return math.Inf(1), nil
	}
	return math.Sqrt(num / den), nil
}

// PixelDiff returns the average normalized difference of pixel values
// between a precise and an approximate rendering — the 252.eon QoS metric.
// Pixels are linear RGB triples flattened into one slice; values are
// normalized by the channel range [0, 1], so a completely black vs white
// frame has loss 1.
func PixelDiff(precise, approx []float64) (float64, error) {
	if len(precise) != len(approx) {
		return 0, ErrLengthMismatch
	}
	if len(precise) == 0 {
		return 0, nil
	}
	sum := 0.0
	for i := range precise {
		d := approx[i] - precise[i]
		if d < 0 {
			d = -d
		}
		if d > 1 {
			d = 1
		}
		sum += d
	}
	return sum / float64(len(precise)), nil
}

// TopNExactMatch reports whether two ranked result lists contain the same
// ids in the same order. This is the strict Bing Search QoS from §3.3: any
// difference in the document set *or* the rank order counts as loss.
func TopNExactMatch(precise, approx []int) bool {
	if len(precise) != len(approx) {
		return false
	}
	for i := range precise {
		if precise[i] != approx[i] {
			return false
		}
	}
	return true
}

// TopNSetMatch reports whether two ranked lists contain the same id set,
// ignoring order. The paper mentions this relaxation (allowing reordering
// within the top N) as possible but does not use it for the headline
// numbers.
func TopNSetMatch(precise, approx []int) bool {
	if len(precise) != len(approx) {
		return false
	}
	seen := make(map[int]int, len(precise))
	for _, id := range precise {
		seen[id]++
	}
	for _, id := range approx {
		if seen[id] == 0 {
			return false
		}
		seen[id]--
	}
	return true
}

// QueryLoss returns the per-query QoS loss for search: 1 if the top-N
// results differ (set or order), else 0. Aggregating the mean of QueryLoss
// over a query stream yields the paper's "% of queries that returned a
// different result" metric.
func QueryLoss(precise, approx []int) float64 {
	if TopNExactMatch(precise, approx) {
		return 0
	}
	return 1
}

// RelativeRegret returns max(0, (approx-precise)/precise) — the QoS metric
// for minimization problems such as CGA's schedule makespan, where only a
// *worse* (larger) result counts as loss. precise must be positive.
func RelativeRegret(precise, approx float64) float64 {
	if precise <= 0 {
		return 0
	}
	r := (approx - precise) / precise
	if r < 0 {
		return 0
	}
	return r
}

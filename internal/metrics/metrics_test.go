package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormDiff(t *testing.T) {
	cases := []struct {
		precise, approx, eps, want float64
	}{
		{10, 11, 1e-12, 0.1},
		{10, 10, 1e-12, 0},
		{-10, -9, 1e-12, 0.1},
		{0, 0.5, 1e-3, 500}, // denom clamped to eps
	}
	for _, c := range cases {
		got := NormDiff(c.precise, c.approx, c.eps)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("NormDiff(%v,%v,%v) = %v, want %v", c.precise, c.approx, c.eps, got, c.want)
		}
	}
}

func TestMeanNormDiff(t *testing.T) {
	got, err := MeanNormDiff([]float64{1, 2}, []float64{1.1, 2}, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.05) > 1e-9 {
		t.Errorf("MeanNormDiff = %v, want 0.05", got)
	}
	if _, err := MeanNormDiff([]float64{1}, []float64{1, 2}, 1e-12); err != ErrLengthMismatch {
		t.Errorf("err = %v, want ErrLengthMismatch", err)
	}
	if got, err := MeanNormDiff(nil, nil, 1e-12); err != nil || got != 0 {
		t.Errorf("empty MeanNormDiff = (%v, %v), want (0, nil)", got, err)
	}
}

func TestRMSNormDiff(t *testing.T) {
	got, err := RMSNormDiff([]float64{3, 4}, []float64{3, 4})
	if err != nil || got != 0 {
		t.Errorf("identical = (%v, %v), want (0, nil)", got, err)
	}
	// precise=(3,4) |precise|=5; approx differs by (0,5): RMS ratio = 1.
	got, err = RMSNormDiff([]float64{3, 4}, []float64{3, 9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("RMSNormDiff = %v, want 1", got)
	}
	// zero precise, nonzero approx -> +Inf
	got, err = RMSNormDiff([]float64{0}, []float64{1})
	if err != nil || !math.IsInf(got, 1) {
		t.Errorf("zero-denominator = (%v, %v), want (+Inf, nil)", got, err)
	}
	// zero precise, zero approx -> 0
	got, err = RMSNormDiff([]float64{0}, []float64{0})
	if err != nil || got != 0 {
		t.Errorf("all-zero = (%v, %v), want (0, nil)", got, err)
	}
	if _, err := RMSNormDiff([]float64{1}, nil); err != ErrLengthMismatch {
		t.Errorf("err = %v, want ErrLengthMismatch", err)
	}
}

func TestPixelDiff(t *testing.T) {
	got, err := PixelDiff([]float64{0, 0.5, 1}, []float64{0, 0.5, 1})
	if err != nil || got != 0 {
		t.Errorf("identical frames = (%v, %v)", got, err)
	}
	got, err = PixelDiff([]float64{0, 0}, []float64{1, 1})
	if err != nil || got != 1 {
		t.Errorf("black vs white = (%v, %v), want (1, nil)", got, err)
	}
	// Differences above 1 are clamped per pixel.
	got, err = PixelDiff([]float64{0}, []float64{5})
	if err != nil || got != 1 {
		t.Errorf("clamped diff = (%v, %v), want (1, nil)", got, err)
	}
	if _, err := PixelDiff([]float64{1}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Errorf("err = %v, want ErrLengthMismatch", err)
	}
}

func TestTopNExactMatch(t *testing.T) {
	if !TopNExactMatch([]int{1, 2, 3}, []int{1, 2, 3}) {
		t.Error("identical lists should match")
	}
	if TopNExactMatch([]int{1, 2, 3}, []int{1, 3, 2}) {
		t.Error("reordered lists must not exact-match")
	}
	if TopNExactMatch([]int{1, 2}, []int{1, 2, 3}) {
		t.Error("different lengths must not match")
	}
}

func TestTopNSetMatch(t *testing.T) {
	if !TopNSetMatch([]int{1, 2, 3}, []int{3, 1, 2}) {
		t.Error("reordered lists should set-match")
	}
	if TopNSetMatch([]int{1, 2, 3}, []int{1, 2, 4}) {
		t.Error("different sets must not match")
	}
	if TopNSetMatch([]int{1, 1, 2}, []int{1, 2, 2}) {
		t.Error("multiset multiplicity must be respected")
	}
	if TopNSetMatch([]int{1}, []int{1, 1}) {
		t.Error("different lengths must not match")
	}
}

func TestQueryLoss(t *testing.T) {
	if got := QueryLoss([]int{4, 5}, []int{4, 5}); got != 0 {
		t.Errorf("identical top-N loss = %v, want 0", got)
	}
	if got := QueryLoss([]int{4, 5}, []int{5, 4}); got != 1 {
		t.Errorf("reordered top-N loss = %v, want 1", got)
	}
}

func TestRelativeRegret(t *testing.T) {
	if got := RelativeRegret(100, 110); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("regret = %v, want 0.1", got)
	}
	if got := RelativeRegret(100, 90); got != 0 {
		t.Errorf("improvement regret = %v, want 0", got)
	}
	if got := RelativeRegret(0, 5); got != 0 {
		t.Errorf("non-positive precise regret = %v, want 0", got)
	}
}

// Property: NormDiff is symmetric under negation of both arguments.
func TestNormDiffNegationProperty(t *testing.T) {
	f := func(p, a float64) bool {
		if math.IsNaN(p) || math.IsNaN(a) || math.IsInf(p, 0) || math.IsInf(a, 0) {
			return true
		}
		d1 := NormDiff(p, a, 1e-9)
		d2 := NormDiff(-p, -a, 1e-9)
		if math.IsInf(d1, 0) || math.IsInf(d2, 0) {
			return true
		}
		return math.Abs(d1-d2) < 1e-6*(1+d1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: identical vectors always have zero loss for every vector
// metric.
func TestZeroLossOnIdenticalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(64)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		if d, err := MeanNormDiff(xs, xs, 1e-12); err != nil || d != 0 {
			t.Fatalf("MeanNormDiff identical = (%v, %v)", d, err)
		}
		if d, err := RMSNormDiff(xs, xs); err != nil || d != 0 {
			t.Fatalf("RMSNormDiff identical = (%v, %v)", d, err)
		}
	}
}

// Property: PixelDiff result is within [0,1].
func TestPixelDiffRangeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(64)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.Float64() * 2
			b[i] = rng.Float64() * 2
		}
		d, err := PixelDiff(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if d < 0 || d > 1 {
			t.Fatalf("PixelDiff out of range: %v", d)
		}
	}
}

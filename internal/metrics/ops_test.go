package metrics

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestOpsSnapshot(t *testing.T) {
	var c OpsCounters
	c.Shed.Add(3)
	c.DeadlinePartial.Add(2)
	c.Degraded.Add(4)
	c.BudgetPushes.Add(6)
	c.SnapshotSaves.Add(5)
	c.SnapshotErrors.Add(1)
	c.RestoreRejected.Add(1)
	s := c.Snapshot()
	if s.Shed != 3 || s.DeadlinePartial != 2 || s.Degraded != 4 ||
		s.BudgetPushes != 6 || s.SnapshotSaves != 5 ||
		s.SnapshotErrors != 1 || s.RestoreRejected != 1 {
		t.Errorf("snapshot = %+v", s)
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]int64
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["shed"] != 3 || decoded["restore_rejected"] != 1 ||
		decoded["degraded"] != 4 || decoded["budget_pushes"] != 6 {
		t.Errorf("JSON shape = %s", data)
	}
}

func TestOpsCountersConcurrent(t *testing.T) {
	var c OpsCounters
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Shed.Add(1)
				_ = c.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := c.Snapshot().Shed; got != 8000 {
		t.Errorf("shed = %d, want 8000", got)
	}
}

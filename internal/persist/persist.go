// Package persist implements crash-safe persistence of controller
// runtime state. A service that is kill -9'd (or OOM-killed, or loses
// its node) should come back with the approximation levels runtime
// recalibration had reached, not the cold model defaults — otherwise
// every restart re-learns the production input distribution from
// scratch and the SLA is unprotected for the whole warm-up.
//
// The write path is the classic crash-safe sequence: marshal into a
// versioned, checksummed envelope; write to a temporary file in the
// destination directory; fsync the file; atomically rename over the
// destination; fsync the directory. A crash at any point leaves either
// the old snapshot or the new one, never a torn mix.
//
// The read path trusts nothing: the envelope version, the payload
// checksum, the snapshot name, and the model signature are all verified
// before a byte of payload reaches a controller, and the controller's
// own Restore validation (NaN/Inf/range checks in internal/core) runs
// after that. A snapshot that fails any check is reported with a typed
// error so callers can distinguish "no snapshot" (cold start) from
// "corrupt snapshot" (count it, start cold) from "foreign model"
// (recalibrated or reconfigured since; start cold).
package persist

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Version is the envelope schema version this package writes.
const Version = 1

// Typed load failures. os.IsNotExist / errors.Is(err, fs.ErrNotExist)
// still works for a missing snapshot file.
var (
	// ErrCorrupt: the file is unreadable as an envelope or fails its
	// checksum — a torn write, disk corruption, or tampering.
	ErrCorrupt = errors.New("persist: snapshot corrupt")
	// ErrVersion: the envelope schema is from an incompatible release.
	ErrVersion = errors.New("persist: unsupported snapshot version")
	// ErrForeignModel: the snapshot was taken against a different QoS
	// model (different calibration, corpus, or SLA) and its levels are
	// meaningless for this controller.
	ErrForeignModel = errors.New("persist: snapshot belongs to a different model")
)

// envelope wraps a payload with everything needed to validate it.
type envelope struct {
	Version   int             `json:"version"`
	Name      string          `json:"name"`
	ModelSig  string          `json:"model_sig,omitempty"`
	SavedUnix int64           `json:"saved_unix"`
	CRC32C    uint32          `json:"crc32c"`
	Payload   json.RawMessage `json:"payload"`
}

// castagnoli is the CRC-32C table (the polynomial used by storage
// systems for payload checksums).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Store persists named snapshots under one directory.
type Store struct {
	dir string
}

// Open creates the state directory if needed and returns a store over
// it.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("persist: empty state directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: create state dir: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the snapshot file path for name.
func (s *Store) Path(name string) string {
	return filepath.Join(s.dir, sanitize(name)+".snapshot.json")
}

// sanitize maps a controller name onto a safe file stem: path
// separators and dots collapse to dashes so "serve.match" and a
// hostile "../../etc/passwd" both stay inside the state directory.
func sanitize(name string) string {
	repl := strings.NewReplacer("/", "-", "\\", "-", "..", "-", string(filepath.Separator), "-")
	out := repl.Replace(name)
	if out == "" {
		out = "unnamed"
	}
	return out
}

// Save atomically writes payload as the snapshot for name. modelSig
// binds the snapshot to the model it was taken against (empty skips the
// binding).
func (s *Store) Save(name, modelSig string, payload []byte) error {
	env := envelope{
		Version:   Version,
		Name:      name,
		ModelSig:  modelSig,
		SavedUnix: time.Now().Unix(),
		CRC32C:    crc32.Checksum(payload, castagnoli),
		Payload:   json.RawMessage(payload),
	}
	data, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("persist: encode envelope: %w", err)
	}
	dst := s.Path(name)
	tmp, err := os.CreateTemp(s.dir, "."+filepath.Base(dst)+".tmp-*")
	if err != nil {
		return fmt.Errorf("persist: create temp snapshot: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: write snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("persist: fsync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("persist: close snapshot: %w", err)
	}
	if err := os.Rename(tmpName, dst); err != nil {
		return fmt.Errorf("persist: publish snapshot: %w", err)
	}
	syncDir(s.dir)
	return nil
}

// syncDir fsyncs a directory so the rename itself is durable. Some
// platforms (and some filesystems) refuse to fsync a directory handle;
// that is a durability nicety lost, not a correctness failure, so
// errors are ignored.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	defer d.Close()
	_ = d.Sync()
}

// Load reads, validates, and returns the payload of the snapshot for
// name. A modelSig mismatch (both sides non-empty) returns
// ErrForeignModel; checksum or decode failures return ErrCorrupt; a
// missing file returns the underlying fs.ErrNotExist.
func (s *Store) Load(name, modelSig string) ([]byte, error) {
	data, err := os.ReadFile(s.Path(name))
	if err != nil {
		return nil, err
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if env.Version != Version {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrVersion, env.Version, Version)
	}
	if env.Name != name {
		return nil, fmt.Errorf("%w: envelope names %q, not %q", ErrCorrupt, env.Name, name)
	}
	if crc32.Checksum(env.Payload, castagnoli) != env.CRC32C {
		return nil, fmt.Errorf("%w: payload checksum mismatch", ErrCorrupt)
	}
	if modelSig != "" && env.ModelSig != "" && env.ModelSig != modelSig {
		return nil, fmt.Errorf("%w: snapshot signature %s, controller %s",
			ErrForeignModel, short(env.ModelSig), short(modelSig))
	}
	return env.Payload, nil
}

// Snapshotter is the checkpointing surface the core controllers and the
// controller Registry share: marshal the runtime state to JSON, restore
// it from JSON with the owner's own validation. persist operates on this
// interface only — it never knows which controller kind (or how many,
// in the Registry case) stands behind a snapshot.
type Snapshotter interface {
	MarshalState() ([]byte, error)
	RestoreStateJSON(data []byte) error
}

// SaveFrom snapshots src's current state under name (see Save for the
// crash-safe write protocol and modelSig binding).
func (s *Store) SaveFrom(name, modelSig string, src Snapshotter) error {
	payload, err := src.MarshalState()
	if err != nil {
		return fmt.Errorf("persist: marshal state for %q: %w", name, err)
	}
	return s.Save(name, modelSig, payload)
}

// LoadInto loads and validates the snapshot for name and hands the
// payload to dst's own restore validation. Envelope failures carry the
// package's typed errors (ErrCorrupt, ErrVersion, ErrForeignModel);
// restore rejections are dst's descriptive errors.
func (s *Store) LoadInto(name, modelSig string, dst Snapshotter) error {
	payload, err := s.Load(name, modelSig)
	if err != nil {
		return err
	}
	return dst.RestoreStateJSON(payload)
}

// short abbreviates a signature for error messages.
func short(sig string) string {
	if len(sig) > 12 {
		return sig[:12] + "…"
	}
	return sig
}

// Signature derives a stable hex model signature from the
// JSON-marshalable parts that define a controller's identity (model,
// SLA, corpus parameters, …). Two controllers built from the same
// calibration and configuration produce the same signature; anything
// else is a foreign model.
func Signature(parts ...any) (string, error) {
	h := sha256.New()
	enc := json.NewEncoder(h)
	for _, p := range parts {
		if err := enc.Encode(p); err != nil {
			return "", fmt.Errorf("persist: signature: %w", err)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

package persist

import (
	"encoding/json"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Error("empty dir accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "state"))
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"level":420,"count":7}`)
	if err := s.Save("serve.match", "sig-1", payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load("serve.match", "sig-1")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Errorf("payload = %s, want %s", got, payload)
	}
	// Overwrite is atomic and versioned the same way.
	payload2 := []byte(`{"level":500,"count":9}`)
	if err := s.Save("serve.match", "sig-1", payload2); err != nil {
		t.Fatal(err)
	}
	got, err = s.Load("serve.match", "sig-1")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload2) {
		t.Errorf("payload after overwrite = %s", got)
	}
}

func TestLoadMissingIsNotExist(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Load("nope", "")
	if !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("missing snapshot error = %v, want fs.ErrNotExist", err)
	}
}

func TestLoadRejectsCorruptPayload(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save("x", "", []byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte inside the envelope on disk.
	path := s.Path("x")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := strings.Replace(string(data), `{"a":1}`, `{"a":7}`, 1)
	if corrupted == string(data) {
		t.Fatal("test could not locate payload to corrupt")
	}
	if err := os.WriteFile(path, []byte(corrupted), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("x", ""); !errors.Is(err, ErrCorrupt) {
		t.Errorf("checksum mismatch error = %v, want ErrCorrupt", err)
	}
}

func TestLoadRejectsTornWrite(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save("x", "", []byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(s.Path("x"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.Path("x"), data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("x", ""); !errors.Is(err, ErrCorrupt) {
		t.Errorf("torn-write error = %v, want ErrCorrupt", err)
	}
}

func TestLoadRejectsForeignModel(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save("x", "model-A", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("x", "model-B"); !errors.Is(err, ErrForeignModel) {
		t.Errorf("foreign model error = %v, want ErrForeignModel", err)
	}
	// Empty controller signature skips the binding (tooling that just
	// wants the bytes).
	if _, err := s.Load("x", ""); err != nil {
		t.Errorf("unbound load failed: %v", err)
	}
}

func TestLoadRejectsUnsupportedVersion(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save("x", "", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	var env map[string]any
	data, _ := os.ReadFile(s.Path("x"))
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	env["version"] = 99
	data, _ = json.Marshal(env)
	if err := os.WriteFile(s.Path("x"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("x", ""); !errors.Is(err, ErrVersion) {
		t.Errorf("version error = %v, want ErrVersion", err)
	}
}

func TestLoadRejectsNameMismatch(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// "a/b" and "a\b" sanitize to the same file stem; the envelope name
	// check catches the collision instead of serving one unit's state to
	// the other.
	if err := s.Save("a/b", "", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(`a\b`, ""); !errors.Is(err, ErrCorrupt) {
		t.Errorf("name mismatch error = %v, want ErrCorrupt", err)
	}
}

func TestSaveLeavesNoTempFilesBehind(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Save("x", "", []byte(`{"i":1}`)); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Errorf("state dir has %d entries, want 1: %v", len(entries), names)
	}
}

func TestSanitizeKeepsPathsInsideDir(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, hostile := range []string{"../../etc/passwd", "a/b/c", "", "..", "\\windows"} {
		p := s.Path(hostile)
		rel, err := filepath.Rel(dir, p)
		if err != nil || strings.HasPrefix(rel, "..") {
			t.Errorf("Path(%q) = %q escapes the state dir", hostile, p)
		}
	}
}

func TestSignatureStableAndDiscriminating(t *testing.T) {
	type modelish struct {
		Levels []float64
		SLA    float64
	}
	a1, err := Signature(modelish{Levels: []float64{1, 2}, SLA: 0.02}, 42)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Signature(modelish{Levels: []float64{1, 2}, SLA: 0.02}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("signature unstable for identical inputs")
	}
	b, err := Signature(modelish{Levels: []float64{1, 2}, SLA: 0.03}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a1 == b {
		t.Error("signature identical across different SLAs")
	}
	c, err := Signature(modelish{Levels: []float64{1, 2}, SLA: 0.02}, 43)
	if err != nil {
		t.Fatal(err)
	}
	if a1 == c {
		t.Error("signature identical across different seeds")
	}
}

// fakeSnapshotter round-trips a JSON blob and can be scripted to fail.
type fakeSnapshotter struct {
	state    map[string]int
	restored []byte
	failWith error
}

func (f *fakeSnapshotter) MarshalState() ([]byte, error) {
	if f.failWith != nil {
		return nil, f.failWith
	}
	return json.Marshal(f.state)
}

func (f *fakeSnapshotter) RestoreStateJSON(data []byte) error {
	if f.failWith != nil {
		return f.failWith
	}
	f.restored = append([]byte(nil), data...)
	return json.Unmarshal(data, &f.state)
}

func TestSaveFromLoadIntoRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	src := &fakeSnapshotter{state: map[string]int{"level": 7}}
	if err := s.SaveFrom("ctrl", "sig", src); err != nil {
		t.Fatal(err)
	}
	dst := &fakeSnapshotter{}
	if err := s.LoadInto("ctrl", "sig", dst); err != nil {
		t.Fatal(err)
	}
	if dst.state["level"] != 7 {
		t.Errorf("restored state = %v", dst.state)
	}
}

func TestSaveFromPropagatesMarshalFailure(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("marshal boom")
	if err := s.SaveFrom("ctrl", "", &fakeSnapshotter{failWith: boom}); !errors.Is(err, boom) {
		t.Errorf("SaveFrom error = %v, want wrapping %v", err, boom)
	}
	if _, err := os.Stat(s.Path("ctrl")); !errors.Is(err, fs.ErrNotExist) {
		t.Error("failed SaveFrom left a snapshot file behind")
	}
}

func TestLoadIntoKeepsTypedEnvelopeErrors(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dst := &fakeSnapshotter{}
	if err := s.LoadInto("absent", "", dst); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("missing snapshot error = %v, want fs.ErrNotExist", err)
	}
	src := &fakeSnapshotter{state: map[string]int{"a": 1}}
	if err := s.SaveFrom("ctrl", "sig-a", src); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadInto("ctrl", "sig-b", dst); !errors.Is(err, ErrForeignModel) {
		t.Errorf("foreign-model error = %v, want ErrForeignModel", err)
	}
	// Restore rejections are the snapshotter's own.
	boom := errors.New("restore boom")
	if err := s.LoadInto("ctrl", "sig-a", &fakeSnapshotter{failWith: boom}); !errors.Is(err, boom) {
		t.Errorf("LoadInto error = %v, want %v", err, boom)
	}
}

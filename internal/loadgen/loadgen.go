// Package loadgen drives a running greenserve instance with an open-loop
// query load at a fixed offered rate and measures latency and deadline
// success — the real-HTTP-stack analog of the paper's Figure 12
// methodology ("the service will provide a response within 300ms for
// 99.9% of its requests for a peak client load of 500 requests per
// second").
package loadgen

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"green/internal/workload"
)

// Config describes one load run.
type Config struct {
	// BaseURL is the service root, e.g. "http://localhost:8080".
	BaseURL string
	// QPS is the offered arrival rate (open-loop mode).
	QPS float64
	// Duration is the run length.
	Duration time.Duration
	// Deadline is the per-request latency SLA.
	Deadline time.Duration
	// MaxInFlight bounds concurrent requests (default 256).
	MaxInFlight int
	// Seed determinizes the query mix.
	Seed int64
	// Client overrides the HTTP client (tests).
	Client *http.Client
	// Closed switches to closed-loop mode: Workers goroutines issue
	// requests back to back for Duration, measuring the service's
	// sustainable throughput (the paper's QPS metric) instead of the
	// behavior at a fixed offered rate. QPS is ignored.
	Closed bool
	// Workers is the closed-loop concurrency (default 8).
	Workers int
	// Coordinator marks the target as a cluster coordinator: response
	// bodies are inspected so partial-coverage pages count as Degraded
	// (still OK) and their failed_shards attribute the cause per shard.
	Coordinator bool
}

// Result summarizes a run.
type Result struct {
	// Sent is the number of requests issued; Completed those that got a
	// response; Failed those with transport or HTTP errors.
	Sent, Completed, Failed int
	// Shed counts requests the service deliberately rejected with 503
	// (its in-flight cap, or a coordinator below quorum) — degraded-mode
	// load shedding, distinct from a transport failure: the service
	// answered, it just refused the work.
	Shed int
	// Degraded counts completed coordinator responses served from
	// partial shard coverage (Coordinator mode only). They count in
	// Completed too — the page arrived, just without every shard.
	Degraded int
	// ShardFailures attributes degraded responses to the shards the
	// coordinator blamed (failed_shards), keyed by shard name
	// (Coordinator mode only; nil otherwise).
	ShardFailures map[string]int
	// WithinDeadline counts completed requests meeting the Deadline.
	WithinDeadline int
	// P50, P95, P99 are latency percentiles of completed requests.
	P50, P95, P99 time.Duration
	// AchievedQPS is completions per second of wall time.
	AchievedQPS float64
}

// SuccessRate is the fraction of sent requests completing within the
// deadline — the paper's Figure 12 y-axis.
func (r Result) SuccessRate() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.WithinDeadline) / float64(r.Sent)
}

// String renders a one-line summary.
func (r Result) String() string {
	s := fmt.Sprintf("sent=%d ok=%d", r.Sent, r.Completed)
	if r.Degraded > 0 || r.ShardFailures != nil {
		s += fmt.Sprintf(" degraded=%d", r.Degraded)
	}
	return s + fmt.Sprintf(" shed=%d fail=%d within-deadline=%.1f%% p50=%v p95=%v p99=%v achieved=%.1f qps",
		r.Shed, r.Failed, 100*r.SuccessRate(), r.P50, r.P95, r.P99, r.AchievedQPS)
}

// queryWords is the synthetic vocabulary the generator draws from.
var queryWords = []string{
	"ocean", "tree", "river", "cloud", "stone", "light", "wind", "fire",
	"earth", "snow", "rain", "storm", "leaf", "night", "star", "moon",
	"iron", "glass", "paper", "road", "bridge", "tower", "field", "bird",
}

// Run executes the load and gathers measurements. It returns an error
// for invalid configuration; transport failures are counted in the
// result instead.
func Run(ctx context.Context, cfg Config) (Result, error) {
	if cfg.BaseURL == "" {
		return Result{}, errors.New("loadgen: BaseURL required")
	}
	if (cfg.QPS <= 0 && !cfg.Closed) || cfg.Duration <= 0 {
		return Result{}, errors.New("loadgen: QPS and Duration must be positive")
	}
	if cfg.Deadline <= 0 {
		return Result{}, errors.New("loadgen: Deadline must be positive")
	}
	if cfg.Closed {
		return runClosed(ctx, cfg)
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight == 0 {
		maxInFlight = 256
	}
	client := cfg.Client
	if client == nil {
		// The transport timeout is deliberately independent of the
		// measurement deadline: a request may miss the SLA and still
		// complete (it counts as completed but not within deadline).
		client = &http.Client{Timeout: 30 * time.Second}
	}
	rng := workload.NewRand(cfg.Seed)

	interval := time.Duration(float64(time.Second) / cfg.QPS)
	total := int(cfg.Duration.Seconds() * cfg.QPS)
	if total < 1 {
		total = 1
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		res       Result
		wg        sync.WaitGroup
	)
	sem := make(chan struct{}, maxInFlight)
	start := time.Now()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	for i := 0; i < total; i++ {
		q := queryWords[rng.Intn(len(queryWords))] + "+" +
			queryWords[rng.Intn(len(queryWords))]
		select {
		case <-ctx.Done():
			i = total // stop issuing
			continue
		case <-ticker.C:
		}
		res.Sent++
		select {
		case sem <- struct{}{}:
		default:
			// Saturated in-flight budget: count as a failed (dropped)
			// request, as an overloaded front end would.
			res.Failed++
			continue
		}
		wg.Add(1)
		go func(q string) {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			rep := doRequest(ctx, client, cfg, q)
			lat := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			switch rep.outcome {
			case reqShed:
				res.Shed++
				return
			case reqFailed:
				res.Failed++
				return
			}
			res.Completed++
			res.recordReport(rep)
			latencies = append(latencies, lat)
			if lat <= cfg.Deadline {
				res.WithinDeadline++
			}
		}(q)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		res.AchievedQPS = float64(res.Completed) / elapsed
	}
	res.P50, res.P95, res.P99 = percentiles(latencies)
	return res, nil
}

// runClosed implements closed-loop measurement: Workers goroutines issue
// requests back to back until the duration elapses.
func runClosed(ctx context.Context, cfg Config) (Result, error) {
	workers := cfg.Workers
	if workers == 0 {
		workers = 8
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	var (
		mu        sync.Mutex
		latencies []time.Duration
		res       Result
		wg        sync.WaitGroup
	)
	deadline := time.Now().Add(cfg.Duration)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := workload.NewRand(seed)
			for time.Now().Before(deadline) && ctx.Err() == nil {
				q := queryWords[rng.Intn(len(queryWords))] + "+" +
					queryWords[rng.Intn(len(queryWords))]
				t0 := time.Now()
				rep := doRequest(ctx, client, cfg, q)
				lat := time.Since(t0)
				mu.Lock()
				res.Sent++
				switch rep.outcome {
				case reqOK:
					res.Completed++
					res.recordReport(rep)
					latencies = append(latencies, lat)
					if lat <= cfg.Deadline {
						res.WithinDeadline++
					}
				case reqShed:
					res.Shed++
				default:
					res.Failed++
				}
				mu.Unlock()
			}
		}(cfg.Seed + int64(w))
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if elapsed > 0 {
		res.AchievedQPS = float64(res.Completed) / elapsed
	}
	res.P50, res.P95, res.P99 = percentiles(latencies)
	return res, nil
}

// reqOutcome classifies one request.
type reqOutcome int

const (
	reqOK reqOutcome = iota
	reqShed
	reqFailed
)

// reqReport is one request's classification; FailedShards is populated
// only for degraded coordinator responses.
type reqReport struct {
	outcome      reqOutcome
	degraded     bool
	failedShards []string
}

func doRequest(ctx context.Context, client *http.Client, cfg Config, q string) reqReport {
	u := cfg.BaseURL + "/search?q=" + url.QueryEscape(q)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return reqReport{outcome: reqFailed}
	}
	resp, err := client.Do(req)
	if err != nil {
		return reqReport{outcome: reqFailed}
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusServiceUnavailable:
		_, _ = io.Copy(io.Discard, resp.Body)
		return reqReport{outcome: reqShed}
	default:
		_, _ = io.Copy(io.Discard, resp.Body)
		return reqReport{outcome: reqFailed}
	}
	if !cfg.Coordinator {
		_, _ = io.Copy(io.Discard, resp.Body)
		return reqReport{outcome: reqOK}
	}
	// Coordinator mode: a 200 may still be a partial page; the body says
	// which shards were missing.
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return reqReport{outcome: reqFailed}
	}
	var page struct {
		Degraded     bool     `json:"degraded"`
		FailedShards []string `json:"failed_shards"`
	}
	if err := json.Unmarshal(body, &page); err != nil {
		return reqReport{outcome: reqFailed}
	}
	return reqReport{outcome: reqOK, degraded: page.Degraded, failedShards: page.FailedShards}
}

// recordReport folds one classified request into the result (caller
// holds the mutex).
func (r *Result) recordReport(rep reqReport) {
	if rep.degraded {
		r.Degraded++
	}
	for _, name := range rep.failedShards {
		if r.ShardFailures == nil {
			r.ShardFailures = make(map[string]int)
		}
		r.ShardFailures[name]++
	}
}

func percentiles(lats []time.Duration) (p50, p95, p99 time.Duration) {
	if len(lats) == 0 {
		return 0, 0, 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(p float64) time.Duration {
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	return at(0.50), at(0.95), at(0.99)
}

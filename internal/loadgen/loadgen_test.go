package loadgen

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"green/internal/serve"
)

func TestRunValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Run(ctx, Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := Run(ctx, Config{BaseURL: "http://x", QPS: 0, Duration: time.Second, Deadline: time.Second}); err == nil {
		t.Error("zero QPS accepted")
	}
	if _, err := Run(ctx, Config{BaseURL: "http://x", QPS: 1, Duration: 0, Deadline: time.Second}); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := Run(ctx, Config{BaseURL: "http://x", QPS: 1, Duration: time.Second, Deadline: 0}); err == nil {
		t.Error("zero deadline accepted")
	}
}

func TestRunAgainstGreenserve(t *testing.T) {
	s, err := serve.New(serve.Config{Seed: 7, CalibrationQueries: 80, CorpusDocs: 3000})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	res, err := Run(context.Background(), Config{
		BaseURL:  srv.URL,
		QPS:      200,
		Duration: 500 * time.Millisecond,
		Deadline: 2 * time.Second,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent < 50 {
		t.Errorf("sent = %d, want ~100", res.Sent)
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if res.SuccessRate() < 0.95 {
		t.Errorf("success rate %v under generous deadline", res.SuccessRate())
	}
	if res.P50 <= 0 || res.P99 < res.P50 {
		t.Errorf("percentiles inconsistent: %v / %v", res.P50, res.P99)
	}
	if res.AchievedQPS <= 0 {
		t.Error("no achieved QPS")
	}
	if res.String() == "" {
		t.Error("empty summary")
	}
}

func TestRunTightDeadlineLowersSuccess(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(20 * time.Millisecond)
		w.WriteHeader(http.StatusOK)
	}))
	defer slow.Close()
	res, err := Run(context.Background(), Config{
		BaseURL:  slow.URL,
		QPS:      100,
		Duration: 300 * time.Millisecond,
		Deadline: time.Millisecond, // impossible
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WithinDeadline != 0 {
		t.Errorf("within deadline = %d with 1ms budget over 20ms handler", res.WithinDeadline)
	}
	if res.Completed == 0 {
		t.Error("requests should still complete")
	}
}

func TestRunCountsFailures(t *testing.T) {
	failing := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer failing.Close()
	res, err := Run(context.Background(), Config{
		BaseURL:  failing.URL,
		QPS:      100,
		Duration: 200 * time.Millisecond,
		Deadline: time.Second,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed == 0 {
		t.Error("500s not counted as failures")
	}
	if res.Completed != 0 {
		t.Errorf("completed = %d for an all-500 server", res.Completed)
	}
}

func TestRunRespectsContextCancellation(t *testing.T) {
	s := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := Run(ctx, Config{
		BaseURL:  s.URL,
		QPS:      50,
		Duration: 30 * time.Second, // would run far longer without ctx
		Deadline: time.Second,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation ignored")
	}
	if res.Sent >= 1500 {
		t.Errorf("sent = %d, cancellation should have stopped issuance", res.Sent)
	}
}

func TestClosedLoopMeasuresThroughput(t *testing.T) {
	s, err := serve.New(serve.Config{Seed: 7, CalibrationQueries: 60, CorpusDocs: 2500})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	res, err := Run(context.Background(), Config{
		BaseURL:  srv.URL,
		Closed:   true,
		Workers:  4,
		Duration: 400 * time.Millisecond,
		Deadline: time.Second,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 || res.AchievedQPS <= 0 {
		t.Fatalf("closed loop measured nothing: %+v", res)
	}
	if res.Sent != res.Completed+res.Failed {
		t.Errorf("accounting broken: %d != %d + %d", res.Sent, res.Completed, res.Failed)
	}
}

func TestClosedLoopValidation(t *testing.T) {
	// Closed mode ignores QPS; zero QPS must be accepted.
	s := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer s.Close()
	res, err := Run(context.Background(), Config{
		BaseURL: s.URL, Closed: true, Workers: 2,
		Duration: 100 * time.Millisecond, Deadline: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Error("closed loop with zero QPS completed nothing")
	}
}

// TestCoordinatorModeClassifiesDegraded: against a coordinator-shaped
// endpoint, 200s with "degraded":true are counted separately with
// per-shard attribution, quorum 503s count as shed, and clean 200s stay
// plain completions.
func TestCoordinatorModeClassifiesDegraded(t *testing.T) {
	var mu sync.Mutex
	n := 0
	co := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		n++
		i := n
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		switch {
		case i%5 == 0:
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"below quorum"}`, http.StatusServiceUnavailable)
		case i%2 == 0:
			fmt.Fprint(w, `{"query":"q","docs":[1,2],"docs_scored":9,"degraded":true,`+
				`"shards_ok":2,"shards_total":3,"failed_shards":["s1"]}`)
		default:
			fmt.Fprint(w, `{"query":"q","docs":[1,2,3],"docs_scored":12,"degraded":false,`+
				`"shards_ok":3,"shards_total":3}`)
		}
	}))
	defer co.Close()

	res, err := Run(context.Background(), Config{
		BaseURL:     co.URL,
		QPS:         200,
		Duration:    300 * time.Millisecond,
		Deadline:    time.Second,
		Seed:        1,
		Coordinator: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded == 0 {
		t.Fatal("no degraded responses classified")
	}
	if res.Shed == 0 {
		t.Error("quorum 503s not counted as shed")
	}
	if res.Completed <= res.Degraded {
		t.Errorf("no clean completions: completed=%d degraded=%d", res.Completed, res.Degraded)
	}
	if got := res.ShardFailures["s1"]; got != res.Degraded {
		t.Errorf("shard attribution s1=%d, want %d (one per degraded response)", got, res.Degraded)
	}
	if !strings.Contains(res.String(), "degraded=") {
		t.Errorf("summary omits degraded count: %s", res.String())
	}

	// Without Coordinator mode the same endpoint yields no degraded
	// classification — bodies are not inspected.
	plain, err := Run(context.Background(), Config{
		BaseURL: co.URL, QPS: 100, Duration: 100 * time.Millisecond,
		Deadline: time.Second, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Degraded != 0 || plain.ShardFailures != nil {
		t.Errorf("plain mode inspected bodies: %+v", plain)
	}
}

func TestSuccessRateZeroOnEmpty(t *testing.T) {
	if (Result{}).SuccessRate() != 0 {
		t.Error("empty result success rate not 0")
	}
}

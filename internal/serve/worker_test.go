package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// workerServer builds a small shard worker.
func workerServer(t *testing.T, index, count int) *Server {
	t.Helper()
	s, err := New(Config{Seed: 7, CalibrationQueries: 60, CorpusDocs: 3000,
		SampleInterval: 50, ShardIndex: index, ShardCount: count})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func post(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestSearchScoresParam: scores=1 adds a scores array parallel to docs;
// without it the response shape is unchanged.
func TestSearchScoresParam(t *testing.T) {
	h := testServer(t).Handler()

	rec := get(t, h, "/search?q=ocean+tree&scores=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var resp searchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Docs) == 0 {
		t.Fatal("no docs returned")
	}
	if len(resp.Scores) != len(resp.Docs) {
		t.Fatalf("scores len %d != docs len %d", len(resp.Scores), len(resp.Docs))
	}
	for i := 1; i < len(resp.Scores); i++ {
		if resp.Scores[i] > resp.Scores[i-1] {
			t.Fatalf("scores not non-increasing: %v", resp.Scores)
		}
	}

	rec = get(t, h, "/search?q=ocean+tree")
	if strings.Contains(rec.Body.String(), `"scores"`) {
		t.Errorf("scores emitted without scores=1: %s", rec.Body)
	}
	var plain searchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &plain); err != nil {
		t.Fatal(err)
	}
	if len(plain.Docs) != len(resp.Docs) {
		t.Fatalf("docs differ with/without scores: %v vs %v", plain.Docs, resp.Docs)
	}
	for i := range plain.Docs {
		if plain.Docs[i] != resp.Docs[i] {
			t.Fatalf("docs differ with/without scores: %v vs %v", plain.Docs, resp.Docs)
		}
	}
}

// TestSearchHandlerIdempotent is the hedged-retry safety regression:
// serving the same query repeatedly returns the same ranked page every
// time, and the only state the handler touches is monotonic counters
// plus the monitored-sampling stream. A hedged duplicate therefore
// cannot corrupt worker state.
func TestSearchHandlerIdempotent(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	var first searchResponse
	for i := 0; i < 10; i++ {
		rec := get(t, h, "/search?q=river+stone&scores=1")
		if rec.Code != http.StatusOK {
			t.Fatalf("call %d: status %d", i, rec.Code)
		}
		var resp searchResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = resp
			continue
		}
		if len(resp.Docs) != len(first.Docs) {
			t.Fatalf("call %d: %d docs, first had %d", i, len(resp.Docs), len(first.Docs))
		}
		for j := range resp.Docs {
			if resp.Docs[j] != first.Docs[j] || resp.Scores[j] != first.Scores[j] {
				t.Fatalf("call %d: page diverged: %v/%v vs %v/%v",
					i, resp.Docs, resp.Scores, first.Docs, first.Scores)
			}
		}
	}
	ops := s.Ops().Snapshot()
	if ops.Shed != 0 || ops.Degraded != 0 {
		t.Errorf("idempotent replays moved degraded/shed counters: %+v", ops)
	}
}

// TestModelEndpoint: /model serves per-controller candidate settings
// with monotone predicted losses.
func TestModelEndpoint(t *testing.T) {
	s, err := New(Config{Seed: 7, CalibrationQueries: 60, CorpusDocs: 3000,
		SampleInterval: 50, ApproxAnd: true})
	if err != nil {
		t.Fatal(err)
	}
	rec := get(t, s.Handler(), "/model")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var resp modelResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Controllers) != 2 {
		t.Fatalf("controllers = %d, want 2 (match + and)", len(resp.Controllers))
	}
	for _, row := range resp.Controllers {
		if len(row.Levels) == 0 {
			t.Fatalf("controller %q has no candidate levels", row.Name)
		}
		for i, lvl := range row.Levels {
			if lvl.Level <= 0 || lvl.PredLoss < 0 || lvl.Speedup <= 0 {
				t.Fatalf("controller %q level %d implausible: %+v", row.Name, i, lvl)
			}
		}
	}
}

// TestBudgetEndpoint: a pushed budget changes the live level, repushing
// is idempotent, and junk is rejected.
func TestBudgetEndpoint(t *testing.T) {
	s := testServer(t)
	h := s.Handler()

	for i := 0; i < 2; i++ { // idempotent
		rec := post(t, h, "/budget", `{"controller":"serve.match","level":1234}`)
		if rec.Code != http.StatusOK {
			t.Fatalf("push %d: status = %d: %s", i, rec.Code, rec.Body)
		}
	}
	if got := s.Loop().Level(); got != 1234 {
		t.Fatalf("level after push = %v, want 1234", got)
	}
	if got := s.Ops().Snapshot().BudgetPushes; got != 2 {
		t.Fatalf("budget_pushes = %d, want 2", got)
	}

	for _, body := range []string{
		`{"controller":"serve.match","level":-5}`,
		`{"controller":"serve.match","level":0}`,
		`{"controller":"nope","level":10}`,
		`not json`,
	} {
		rec := post(t, h, "/budget", body)
		if rec.Code == http.StatusOK {
			t.Errorf("budget body %q accepted", body)
		}
	}
	if got := s.Loop().Level(); got != 1234 {
		t.Fatalf("level moved by rejected pushes: %v", got)
	}

	// Default controller name: empty means the match loop.
	rec := post(t, h, "/budget", `{"level":2000}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("default-controller push: status = %d: %s", rec.Code, rec.Body)
	}
	if got := s.Loop().Level(); got != 2000 {
		t.Fatalf("level after default push = %v, want 2000", got)
	}
}

// TestWorkerShardConfig: a shard worker's /config reflects the
// partition and its scans only ever return the shard's own documents.
func TestWorkerShardConfig(t *testing.T) {
	s := workerServer(t, 1, 3)
	rec := get(t, s.Handler(), "/search?q=ocean+tree+light&scores=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var resp searchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	for _, d := range resp.Docs {
		if d%3 != 1 {
			t.Fatalf("doc %d does not belong to shard 1 of 3 (docs %v)", d, resp.Docs)
		}
	}
	if idx, count := s.Engine().Shard(); idx != 1 || count != 3 {
		t.Fatalf("engine shard = %d/%d, want 1/3", idx, count)
	}
}

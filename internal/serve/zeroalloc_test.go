package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// nullRW is a ResponseWriter whose warm-path methods touch no
// allocator: the header map is preallocated and the body is discarded.
// httptest.ResponseRecorder is unsuitable for an allocation gate — its
// Body buffer grows per request.
type nullRW struct{ h http.Header }

func (w *nullRW) Header() http.Header         { return w.h }
func (w *nullRW) Write(b []byte) (int, error) { return len(b), nil }
func (w *nullRW) WriteHeader(int)             {}

// TestServeWarmPathZeroAlloc is the serve-path allocation gate
// (enforced again by scripts/check.sh): once the query cache and the
// scratch pools are warm, a /search request must not allocate. The
// sample interval is pushed out of reach so the measured path is the
// steady (non-monitored) one — the same regime the ServeQPS benchmark
// measures.
func TestServeWarmPathZeroAlloc(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race detector instrumentation allocates; the allocation budget only holds in a plain build")
	}
	s, err := New(Config{Seed: 7, CalibrationQueries: 60, CorpusDocs: 2000,
		SampleInterval: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	h := s.withResilience(s.handleSearch)
	req := httptest.NewRequest(http.MethodGet, "/search?q=alpha+beta", nil)
	w := &nullRW{h: make(http.Header, 4)}
	for i := 0; i < 16; i++ {
		h(w, req) // warm the query cache, scratch pools, and buffers
	}
	avg := testing.AllocsPerRun(200, func() { h(w, req) })
	if avg != 0 {
		t.Fatalf("warm /search path allocates %.2f times per request, want 0", avg)
	}
}

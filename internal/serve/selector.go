package serve

import (
	"sort"

	"green/internal/core"
)

// Proactive per-input control on the serving path. With Config.Selector
// set, calibration tags every training query with its feature vector —
// the summed posting-list length of its terms (Key) and its term count
// (Aux1) — and fits per-feature-bucket loss curves beside the global
// reactive model. The built core.LoopSelector is installed on the match
// loop, so each served query's approximation level is chosen from its
// own bucket's curve (Select) before the scan runs, while the monitored
// sampling stream repairs bucket-level drift (Correct). Queries outside
// the calibrated feature domain fall back to the reactive level; the
// /stats selector counters say how often.

// selectorBuckets is the number of feature buckets the serving selector
// partitions the posting-mass domain into. Quartiles are enough to
// separate the short conjunctive-looking tail from the heavy Zipf head
// without starving any bucket of calibration runs.
const selectorBuckets = 4

// queryFeat maps one parsed query onto the controller feature space:
// Key is the summed document frequency of the query's terms (the upper
// bound on its match count — the property that determines how many
// scanned documents a given top-N page needs), Aux1 the term count.
// The cache-hit flag (Aux2) is stamped per request by handleSearch.
func (s *Server) queryFeat(terms []int) core.Features {
	if len(terms) == 0 {
		return core.Features{}
	}
	mass := 0
	for _, t := range terms {
		mass += s.engine.DocFreq(t)
	}
	return core.Features{Key: float64(mass), Aux1: float64(len(terms)), Valid: true}
}

// featureEdges derives strictly-ascending bucket edges from the
// calibration queries' feature keys: quantile cut points, deduplicated,
// with the top edge padded to twice the observed maximum so serving
// queries somewhat heavier than any calibration query still land in the
// last bucket instead of falling back to the reactive law. Returns nil
// when the key distribution is too degenerate to bucket (fewer than two
// distinct edges) — the caller then serves reactive-only.
func featureEdges(keys []float64, buckets int) []float64 {
	if len(keys) == 0 || buckets < 1 {
		return nil
	}
	sorted := append([]float64(nil), keys...)
	sort.Float64s(sorted)
	edges := make([]float64, 0, buckets+1)
	edges = append(edges, sorted[0])
	for b := 1; b < buckets; b++ {
		q := sorted[b*len(sorted)/buckets]
		if q > edges[len(edges)-1] {
			edges = append(edges, q)
		}
	}
	top := sorted[len(sorted)-1] * 2
	if top <= edges[len(edges)-1] {
		top = edges[len(edges)-1] + 1
	}
	return append(edges, top)
}

package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"green/internal/chaos"
	"green/internal/persist"
)

// resilientServer builds a small service with resilience-test overrides.
func resilientServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{Seed: 7, CalibrationQueries: 60, CorpusDocs: 4000,
		SampleInterval: 20}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func decodeStats(t *testing.T, h http.Handler) statsResponse {
	t.Helper()
	rec := get(t, h, "/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("/stats status = %d", rec.Code)
	}
	var st statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestShedWhenOverloaded(t *testing.T) {
	s := resilientServer(t, func(c *Config) { c.MaxInFlight = 2 })
	h := s.Handler()

	// Healthy first: /readyz agrees with /healthz.
	if rec := get(t, h, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("/readyz while healthy = %d: %s", rec.Code, rec.Body)
	}

	// Simulate two requests already in flight; the next must be shed.
	s.inFlight.Add(2)
	rec := get(t, h, "/search?q=alpha+beta")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("overloaded /search = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	if got := s.Ops().Snapshot().Shed; got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}

	// At capacity the service is degraded: /readyz flips, /healthz does not.
	if rec := get(t, h, "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("/readyz at capacity = %d, want 503", rec.Code)
	} else if !strings.Contains(rec.Body.String(), "shedding") {
		t.Errorf("/readyz body = %s, want shedding reason", rec.Body)
	}
	if rec := get(t, h, "/healthz"); rec.Code != http.StatusOK {
		t.Errorf("/healthz at capacity = %d, want 200", rec.Code)
	}
	st := decodeStats(t, h)
	if !st.Degraded || st.Ops.Shed != 1 {
		t.Errorf("stats = degraded %v, ops %+v", st.Degraded, st.Ops)
	}

	// Capacity frees up: ready again, searches served.
	s.inFlight.Add(-2)
	if rec := get(t, h, "/readyz"); rec.Code != http.StatusOK {
		t.Errorf("/readyz after recovery = %d, want 200", rec.Code)
	}
	if rec := get(t, h, "/search?q=alpha+beta"); rec.Code != http.StatusOK {
		t.Errorf("/search after recovery = %d, want 200", rec.Code)
	}
}

func TestDeadlineServesPartialResults(t *testing.T) {
	s := resilientServer(t, func(c *Config) {
		c.RequestTimeout = time.Nanosecond // expired before the scan starts
		c.Disabled = true                  // full precise scan, so the cut is visible
	})
	h := s.Handler()
	rec := get(t, h, "/search?q=alpha+beta")
	if rec.Code != http.StatusOK {
		t.Fatalf("deadline /search = %d, want 200 with partial results", rec.Code)
	}
	var resp searchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded {
		t.Error("deadline response not marked degraded")
	}
	if resp.DocsScored >= s.Engine().Docs() {
		t.Errorf("docs scored = %d, want a partial scan of %d",
			resp.DocsScored, s.Engine().Docs())
	}
	if got := s.Ops().Snapshot().DeadlinePartial; got != 1 {
		t.Errorf("deadline_partial counter = %d, want 1", got)
	}
}

func TestBreakerOpensUnderInjectedPanics(t *testing.T) {
	s := resilientServer(t, func(c *Config) {
		c.SampleInterval = 1 // every query monitored → every Record guarded
		c.Chaos = chaos.New(chaos.Config{Seed: 1, PanicEvery: 1})
	})
	h := s.Handler()
	// The query must match more documents than the operating level so
	// the monitored stop decision triggers and Record (the chaos site)
	// actually runs; many distinct words widen the match set.
	const wide = "/search?q=alpha+beta+gamma+delta+epsilon+zeta+eta+theta"
	for i := 0; i < 10; i++ {
		if rec := get(t, h, wide); rec.Code != http.StatusOK {
			t.Fatalf("query %d = %d, want 200 despite injected panics", i, rec.Code)
		}
	}
	st := decodeStats(t, h)
	if st.BreakerState != "open" {
		t.Errorf("breaker state = %q, want open", st.BreakerState)
	}
	if st.ContainedPanics < 3 || st.BreakerTrips != 1 {
		t.Errorf("contained = %d, trips = %d", st.ContainedPanics, st.BreakerTrips)
	}
	if !st.Degraded {
		t.Error("open breaker not reported as degraded")
	}
	rec := get(t, h, "/readyz")
	if rec.Code != http.StatusServiceUnavailable ||
		!strings.Contains(rec.Body.String(), "breaker-open") {
		t.Errorf("/readyz = %d %s, want 503 breaker-open", rec.Code, rec.Body)
	}
}

func TestSnapshotRestoreAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	mutate := func(c *Config) { c.StateDir = dir }
	s1 := resilientServer(t, mutate)
	if s1.RestoreNote() != "cold" {
		t.Fatalf("first boot restore = %q, want cold", s1.RestoreNote())
	}
	h1 := s1.Handler()
	for i := 0; i < 30; i++ {
		get(t, h1, "/search?q=alpha+beta+gamma")
	}
	execs1, _, _ := s1.Loop().Stats()
	if err := s1.SaveState(); err != nil {
		t.Fatal(err)
	}

	// Restart with the same configuration: the snapshot is restored and
	// the controller resumes where it left off rather than starting cold.
	s2 := resilientServer(t, mutate)
	if s2.RestoreNote() != "restored" {
		t.Fatalf("restart restore = %q, want restored", s2.RestoreNote())
	}
	execs2, _, _ := s2.Loop().Stats()
	if execs2 != execs1 {
		t.Errorf("restored execs = %d, want %d", execs2, execs1)
	}
	if s2.Loop().Level() != s1.Loop().Level() {
		t.Errorf("restored level = %v, want %v", s2.Loop().Level(), s1.Loop().Level())
	}

	// Corrupt the snapshot on disk: the next restart must refuse the
	// state but still come up serving.
	store, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := chaos.CorruptFile(store.Path(stateName), 3); err != nil {
		t.Fatal(err)
	}
	s3 := resilientServer(t, mutate)
	if !strings.HasPrefix(s3.RestoreNote(), "rejected:") {
		t.Fatalf("corrupt restore = %q, want rejected", s3.RestoreNote())
	}
	if got := s3.Ops().Snapshot().RestoreRejected; got != 1 {
		t.Errorf("restore_rejected = %d, want 1", got)
	}
	h3 := s3.Handler()
	if rec := get(t, h3, "/search?q=alpha+beta"); rec.Code != http.StatusOK {
		t.Errorf("search after rejected restore = %d, want 200", rec.Code)
	}
	st := decodeStats(t, h3)
	if !strings.HasPrefix(st.Restore, "rejected:") {
		t.Errorf("/stats restore = %q, want rejected", st.Restore)
	}
}

// TestCorruptedMultiControllerSnapshotBoot: the bundled snapshot holds
// every registered controller; torn (truncated mid-write) and bit-
// flipped files must both be rejected atomically at boot — neither
// controller restores from a damaged bundle — and the service still
// comes up cold, serving both approximation sites.
func TestCorruptedMultiControllerSnapshotBoot(t *testing.T) {
	damage := map[string]func(path string) error{
		"truncated": func(path string) error { return chaos.TruncateFile(path, 5) },
		"corrupted": func(path string) error { return chaos.CorruptFile(path, 5) },
	}
	for name, breakFile := range damage {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			mutate := func(c *Config) {
				c.StateDir = dir
				c.ApproxAnd = true
			}
			s1 := resilientServer(t, mutate)
			h1 := s1.Handler()
			for i := 0; i < 20; i++ {
				get(t, h1, "/search?q=alpha+beta")
				get(t, h1, "/search?q=alpha+beta&mode=and")
			}
			if err := s1.SaveState(); err != nil {
				t.Fatal(err)
			}

			store, err := persist.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if err := breakFile(store.Path(stateName)); err != nil {
				t.Fatal(err)
			}

			s2 := resilientServer(t, mutate)
			if !strings.HasPrefix(s2.RestoreNote(), "rejected:") {
				t.Fatalf("%s restore = %q, want rejected", name, s2.RestoreNote())
			}
			if got := s2.Ops().Snapshot().RestoreRejected; got != 1 {
				t.Errorf("restore_rejected = %d, want 1", got)
			}
			// Atomic rejection: no controller got a partial restore — both
			// start cold (zero executions), not with s1's counters.
			for _, c := range s2.Registry().Controllers() {
				execs, _, _ := c.Stats()
				if execs != 0 {
					t.Errorf("controller %q restored %d execs from a damaged bundle", c.Name(), execs)
				}
			}
			// And both sites still serve.
			h2 := s2.Handler()
			if rec := get(t, h2, "/search?q=alpha+beta"); rec.Code != http.StatusOK {
				t.Errorf("disjunctive search after %s restore = %d", name, rec.Code)
			}
			if rec := get(t, h2, "/search?q=alpha+beta&mode=and"); rec.Code != http.StatusOK {
				t.Errorf("conjunctive search after %s restore = %d", name, rec.Code)
			}
			// The damaged bundle must not poison the next save: a fresh
			// snapshot cycle restores cleanly again.
			if err := s2.SaveState(); err != nil {
				t.Fatal(err)
			}
			s3 := resilientServer(t, mutate)
			if s3.RestoreNote() != "restored" {
				t.Errorf("post-repair restore = %q, want restored", s3.RestoreNote())
			}
		})
	}
}

func TestForeignSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	s1 := resilientServer(t, func(c *Config) { c.StateDir = dir })
	if err := s1.SaveState(); err != nil {
		t.Fatal(err)
	}
	// A different SLA is a different model contract: its persisted
	// levels must not be applied.
	s2 := resilientServer(t, func(c *Config) {
		c.StateDir = dir
		c.SLA = 0.05
	})
	if !strings.HasPrefix(s2.RestoreNote(), "rejected:") {
		t.Errorf("foreign restore = %q, want rejected", s2.RestoreNote())
	}
}

func TestSnapshotLoopWritesPeriodically(t *testing.T) {
	s := resilientServer(t, func(c *Config) {
		c.StateDir = t.TempDir()
		c.SnapshotInterval = 10 * time.Millisecond
	})
	stop := s.StartSnapshotLoop()
	deadline := time.Now().Add(2 * time.Second)
	for s.Ops().Snapshot().SnapshotSaves == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	stop() // idempotent
	if got := s.Ops().Snapshot().SnapshotSaves; got == 0 {
		t.Error("background snapshot loop wrote nothing")
	}
}

func TestSnapshotLoopNoopWithoutStateDir(t *testing.T) {
	s := resilientServer(t, nil)
	stop := s.StartSnapshotLoop()
	stop()
	if err := s.SaveState(); err != nil {
		t.Errorf("SaveState without state dir = %v, want nil", err)
	}
	if got := s.Ops().Snapshot().SnapshotSaves; got != 0 {
		t.Errorf("snapshot_saves = %d, want 0", got)
	}
}

package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"green/internal/chaos"
	"green/internal/persist"
)

// wideQuery matches more documents than the operating level, so
// monitored executions actually reach the Record/Loss callbacks where
// the chaos injector aims.
const wideQuery = "alpha+beta+gamma+delta+epsilon+zeta+eta+theta"

// TestChaosServiceSurvivesAndRecovers is the fault-injection harness
// end to end: a service under injected QoS-callback panics and latency
// spikes, hammered past its in-flight cap, must stay available (every
// response is 200 or a deliberate 503 shed); after a crash that leaves
// a corrupted snapshot, a restart must reject the state, come up cold,
// and re-converge the monitored loss under the SLA; and a restart from
// a valid snapshot must resume the monitoring cadence within one
// SampleInterval.
func TestChaosServiceSurvivesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Seed: 7, CalibrationQueries: 60, CorpusDocs: 4000,
		SampleInterval: 5, StateDir: dir,
		MaxInFlight: 2, BreakerThreshold: 3, BreakerCooldown: 8,
	}

	// Phase 1: chaos load. Every 4th Record/Loss call panics, every 3rd
	// stalls; 8 clients hammer a 2-slot service.
	chaosCfg := cfg
	chaosCfg.Chaos = chaos.New(chaos.Config{
		Seed: 11, PanicEvery: 4, DelayEvery: 3, Delay: time.Millisecond,
	})
	s1, err := New(chaosCfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s1.Handler())
	var ok, shed, other atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				url := fmt.Sprintf("%s/search?q=%s+g%dq%d", srv.URL, wideQuery, g, i)
				resp, err := http.Get(url)
				if err != nil {
					other.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
				case http.StatusServiceUnavailable:
					shed.Add(1)
				default:
					other.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	srv.Close()
	if other.Load() != 0 {
		t.Fatalf("responses other than 200/503: %d", other.Load())
	}
	if ok.Load() == 0 {
		t.Fatal("no request succeeded under chaos")
	}
	if shed.Load() == 0 {
		t.Error("in-flight cap never shed under 8 clients vs 2 slots")
	}
	panics, delays := chaosCfg.Chaos.Counts()
	if panics == 0 || delays == 0 {
		t.Fatalf("chaos injected %d panics, %d delays; want both > 0", panics, delays)
	}
	if got := s1.Loop().Breaker().ContainedPanics; got == 0 {
		t.Error("injected panics were never contained by the controller")
	}

	// Phase 2: crash with a corrupted snapshot on disk. The restart must
	// refuse the state, come up cold, and serve.
	if err := s1.SaveState(); err != nil {
		t.Fatal(err)
	}
	store, err := persist.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := chaos.CorruptFile(store.Path(stateName), 13); err != nil {
		t.Fatal(err)
	}
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(s2.RestoreNote(), "rejected:") {
		t.Fatalf("corrupt snapshot restore = %q, want rejected", s2.RestoreNote())
	}

	// Phase 3: fault-free mixed traffic. The controller oscillates its
	// level around the SLA band (the paper's steady-state behavior), so
	// "re-converged" means the mean monitored loss settles at the order
	// of the SLA — not an order of magnitude above it, as an un-adapted
	// or poisoned controller would produce. This phase is deterministic:
	// the restart came up cold, the workload and corpus are seeded, and
	// requests are sequential.
	h2 := s2.Handler()
	words := []string{"ocean", "tree", "river", "cloud", "stone", "light",
		"wind", "fire", "earth", "snow", "rain", "storm"}
	for n := 0; n < 600; n++ {
		i := n % len(words)
		j := (n/len(words) + 1 + i) % len(words)
		rec := get(t, h2, fmt.Sprintf("/search?q=%s+%s+r%d", words[i], words[j], n))
		if rec.Code != http.StatusOK {
			t.Fatalf("recovery query %d = %d", n, rec.Code)
		}
	}
	_, monitored, meanLoss := s2.Loop().Stats()
	if monitored == 0 {
		t.Fatal("no monitored executions during recovery")
	}
	if meanLoss > 2*0.02 {
		t.Errorf("mean monitored loss = %v did not re-converge near SLA 0.02", meanLoss)
	}
	if b := s2.Loop().Breaker(); b.State.String() != "closed" {
		t.Errorf("breaker after fault-free traffic = %v, want closed", b.State)
	}

	// Phase 4: restart from the now-valid snapshot. The controller
	// resumes its counters and monitors again within one SampleInterval.
	if err := s2.SaveState(); err != nil {
		t.Fatal(err)
	}
	s3, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s3.RestoreNote() != "restored" {
		t.Fatalf("valid snapshot restore = %q, want restored", s3.RestoreNote())
	}
	execs2, monitored2, _ := s2.Loop().Stats()
	execs3, monitored3, _ := s3.Loop().Stats()
	if execs3 != execs2 || monitored3 != monitored2 {
		t.Fatalf("restored counters = (%d, %d), want (%d, %d)",
			execs3, monitored3, execs2, monitored2)
	}
	h3 := s3.Handler()
	for i := 0; i < cfg.SampleInterval; i++ {
		get(t, h3, fmt.Sprintf("/search?q=%s+s%d", wideQuery, i))
	}
	if _, after, _ := s3.Loop().Stats(); after <= monitored3 {
		t.Errorf("no monitored execution within one SampleInterval of restart")
	}
}

package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
)

// multiSiteServer builds a service hosting both approximation sites
// (the disjunctive match loop and the conjunctive scan loop).
func multiSiteServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{Seed: 7, CalibrationQueries: 60, CorpusDocs: 4000,
		SampleInterval: 10, ApproxAnd: true}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestApproxAndRegistersSecondController(t *testing.T) {
	s := multiSiteServer(t, nil)
	if s.AndLoop() == nil {
		t.Fatal("ApproxAnd did not install the conjunctive controller")
	}
	names := s.Registry().Names()
	if len(names) != 2 || names[0] != snapshotName || names[1] != andLoopName {
		t.Fatalf("registry = %v, want [%s %s]", names, snapshotName, andLoopName)
	}
	h := s.Handler()
	var c configResponse
	if err := json.Unmarshal(get(t, h, "/config").Body.Bytes(), &c); err != nil {
		t.Fatal(err)
	}
	if len(c.Controllers) != 2 {
		t.Errorf("/config controllers = %v, want both sites", c.Controllers)
	}
}

func TestApproxAndServesUnderController(t *testing.T) {
	s := multiSiteServer(t, nil)
	h := s.Handler()
	for i := 0; i < 25; i++ {
		rec := get(t, h, fmt.Sprintf("/search?q=alpha+beta&mode=and&r=%d", i))
		if rec.Code != http.StatusOK {
			t.Fatalf("AND query %d = %d: %s", i, rec.Code, rec.Body)
		}
	}
	execs, monitored, _ := s.AndLoop().Stats()
	if execs != 25 {
		t.Errorf("and-loop executions = %d, want 25", execs)
	}
	if monitored == 0 {
		t.Error("and loop never monitored with SampleInterval 10")
	}
	// The match loop saw none of the conjunctive traffic.
	if orExecs, _, _ := s.Loop().Stats(); orExecs != 0 {
		t.Errorf("match loop executions = %d, want 0", orExecs)
	}
	st := decodeStats(t, h)
	if len(st.Controllers) != 2 {
		t.Fatalf("/stats controllers = %d rows, want 2", len(st.Controllers))
	}
	byName := map[string]int64{}
	for _, row := range st.Controllers {
		byName[row.Name] = row.Executions
	}
	if byName[andLoopName] != 25 || byName[snapshotName] != 0 {
		t.Errorf("per-controller executions = %v", byName)
	}
}

func TestMultiControllerSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	mutate := func(c *Config) { c.StateDir = dir }
	s1 := multiSiteServer(t, mutate)
	if s1.RestoreNote() != "cold" {
		t.Fatalf("first boot = %q, want cold", s1.RestoreNote())
	}
	if rep := s1.RestoreReport(); rep[snapshotName] != "cold" || rep[andLoopName] != "cold" {
		t.Fatalf("cold-boot report = %v", rep)
	}
	h1 := s1.Handler()
	for i := 0; i < 20; i++ {
		get(t, h1, "/search?q=alpha+beta+gamma")
		get(t, h1, "/search?q=alpha+beta&mode=and")
	}
	if err := s1.SaveState(); err != nil {
		t.Fatal(err)
	}

	s2 := multiSiteServer(t, mutate)
	if s2.RestoreNote() != "restored" {
		t.Fatalf("restart = %q, want restored", s2.RestoreNote())
	}
	if rep := s2.RestoreReport(); rep[snapshotName] != "restored" || rep[andLoopName] != "restored" {
		t.Fatalf("restart report = %v", rep)
	}
	for _, pair := range []struct {
		name   string
		c1, c2 interface {
			Stats() (int64, int64, float64)
			Level() float64
		}
	}{
		{snapshotName, s1.Loop(), s2.Loop()},
		{andLoopName, s1.AndLoop(), s2.AndLoop()},
	} {
		e1, m1, _ := pair.c1.Stats()
		e2, m2, _ := pair.c2.Stats()
		if e1 != e2 || m1 != m2 {
			t.Errorf("%s counters (%d,%d) vs (%d,%d)", pair.name, e1, m1, e2, m2)
		}
		if pair.c1.Level() != pair.c2.Level() {
			t.Errorf("%s level %v vs %v", pair.name, pair.c1.Level(), pair.c2.Level())
		}
	}
}

func TestSingleSiteSnapshotIsForeignToMultiSite(t *testing.T) {
	// Adding a second approximation site changes the model signature: a
	// single-site snapshot must not restore into a multi-site server.
	dir := t.TempDir()
	s1, err := New(Config{Seed: 7, CalibrationQueries: 60, CorpusDocs: 4000,
		SampleInterval: 10, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.SaveState(); err != nil {
		t.Fatal(err)
	}
	s2 := multiSiteServer(t, func(c *Config) { c.StateDir = dir })
	if note := s2.RestoreNote(); len(note) < 9 || note[:9] != "rejected:" {
		t.Errorf("cross-layout restore = %q, want rejected", note)
	}
}

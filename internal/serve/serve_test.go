package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// testServer builds a small service once per test run.
func testServer(t *testing.T) *Server {
	t.Helper()
	s, err := New(Config{Seed: 7, CalibrationQueries: 100, CorpusDocs: 4000,
		SampleInterval: 50})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{SLA: -0.1}); err == nil {
		t.Error("negative SLA accepted")
	}
	if _, err := New(Config{SLA: 1.5}); err == nil {
		t.Error("SLA >= 1 accepted")
	}
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestHealthz(t *testing.T) {
	h := testServer(t).Handler()
	rec := get(t, h, "/healthz")
	if rec.Code != http.StatusOK {
		t.Errorf("status = %d", rec.Code)
	}
}

func TestSearchEndpoint(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	rec := get(t, h, "/search?q=alpha+beta")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var resp searchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Query != "alpha beta" {
		t.Errorf("echoed query = %q", resp.Query)
	}
	if resp.DocsScored <= 0 {
		t.Errorf("docs scored = %d", resp.DocsScored)
	}
	if len(resp.Docs) == 0 {
		t.Error("no results")
	}
	// Same query again: deterministic results.
	rec2 := get(t, h, "/search?q=alpha+beta")
	var resp2 searchResponse
	if err := json.Unmarshal(rec2.Body.Bytes(), &resp2); err != nil {
		t.Fatal(err)
	}
	if len(resp.Docs) != len(resp2.Docs) {
		t.Error("result size unstable")
	}
}

func TestSearchRequiresQuery(t *testing.T) {
	h := testServer(t).Handler()
	if rec := get(t, h, "/search"); rec.Code != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", rec.Code)
	}
	if rec := get(t, h, "/search?q=%20"); rec.Code != http.StatusBadRequest {
		t.Errorf("blank query status = %d, want 400", rec.Code)
	}
}

func TestSearchAndMode(t *testing.T) {
	h := testServer(t).Handler()
	rec := get(t, h, "/search?q=alpha+beta&mode=and")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var andResp searchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &andResp); err != nil {
		t.Fatal(err)
	}
	rec = get(t, h, "/search?q=alpha+beta&mode=or")
	var orResp searchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &orResp); err != nil {
		t.Fatal(err)
	}
	if andResp.DocsScored > orResp.DocsScored {
		t.Errorf("AND scored %d > OR %d", andResp.DocsScored, orResp.DocsScored)
	}
	if andResp.Approximated {
		t.Error("AND mode must not be approximated")
	}
	if rec := get(t, h, "/search?q=x&mode=bogus"); rec.Code != http.StatusBadRequest {
		t.Errorf("bogus mode status = %d", rec.Code)
	}
}

func TestStatsEndpoint(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	for i := 0; i < 5; i++ {
		get(t, h, "/search?q=hello+world")
	}
	rec := get(t, h, "/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var st statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Queries != 5 {
		t.Errorf("queries = %d, want 5", st.Queries)
	}
	if st.CurrentM <= 0 {
		t.Errorf("current M = %v", st.CurrentM)
	}
	if st.DocsScored <= 0 {
		t.Errorf("docs scored = %d", st.DocsScored)
	}
	if st.WorkSavedFraction < 0 || st.WorkSavedFraction >= 1 {
		t.Errorf("work saved = %v", st.WorkSavedFraction)
	}
}

func TestConfigEndpoint(t *testing.T) {
	h := testServer(t).Handler()
	rec := get(t, h, "/config")
	var c configResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &c); err != nil {
		t.Fatal(err)
	}
	if c.SLA != 0.02 || c.TopN != 10 || c.CorpusDocs <= 0 || c.InitialM <= 0 {
		t.Errorf("config = %+v", c)
	}
}

func TestApproximationSavesWork(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	// Drive enough distinct queries that at least some hit long posting
	// lists where the cap bites.
	words := []string{"ocean", "tree", "river", "cloud", "stone", "light",
		"wind", "fire", "earth", "snow", "rain", "storm"}
	for i, w := range words {
		for j := i + 1; j < len(words); j++ {
			get(t, h, "/search?q="+w+"+"+words[j])
		}
	}
	rec := get(t, h, "/stats")
	var st statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.WorkSavedFraction <= 0 {
		t.Errorf("approximation saved no work: %+v", st)
	}
}

func TestConcurrentRequests(t *testing.T) {
	s := testServer(t)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				resp, err := http.Get(srv.URL + "/search?q=parallel+request")
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	var st statsResponse
	rec := get(t, s.Handler(), "/stats")
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Queries != 32 {
		t.Errorf("queries = %d, want 32", st.Queries)
	}
}

func TestTermsOfDeduplicatesAndBounds(t *testing.T) {
	s := testServer(t)
	terms := s.termsOf("Word word WORD other")
	if len(terms) < 1 || len(terms) > 3 {
		t.Fatalf("terms = %v", terms)
	}
	seen := map[int]bool{}
	for _, term := range terms {
		if term < 0 || term >= s.Engine().Vocab() {
			t.Fatalf("term %d out of range", term)
		}
		if seen[term] {
			t.Fatalf("duplicate term %d", term)
		}
		seen[term] = true
	}
	// "word" in any case maps to one term.
	if len(s.termsOf("case CASE Case")) != 1 {
		t.Error("case folding failed")
	}
}

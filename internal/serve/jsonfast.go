package serve

import "strconv"

// Hand-rolled JSON encoding for the /search response. encoding/json's
// Encoder walks the value reflectively and allocates per call; the warm
// serve path instead appends into a pooled byte buffer. The output is
// byte-identical to encoding/json for this shape (field order follows
// the struct, HTML characters are escaped the same way, a trailing
// newline matches Encoder.Encode) — equivalence-tested in
// jsonfast_test.go.

// appendSearchJSON appends resp encoded as JSON (plus the Encoder's
// trailing newline) to b.
func appendSearchJSON(b []byte, r *searchResponse) []byte {
	b = append(b, `{"query":`...)
	b = appendJSONString(b, r.Query)
	b = append(b, `,"docs":`...)
	if r.Docs == nil {
		b = append(b, "null"...)
	} else {
		b = append(b, '[')
		for i, d := range r.Docs {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendInt(b, int64(d), 10)
		}
		b = append(b, ']')
	}
	b = append(b, `,"docs_scored":`...)
	b = strconv.AppendInt(b, int64(r.DocsScored), 10)
	b = append(b, `,"approximated":`...)
	b = strconv.AppendBool(b, r.Approximated)
	b = append(b, `,"monitored":`...)
	b = strconv.AppendBool(b, r.MonitoredScan)
	if r.Degraded {
		b = append(b, `,"degraded":true`...)
	}
	return append(b, '}', '\n')
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal, escaping exactly
// the byte set encoding/json escapes with HTML escaping on (its
// default): quotes, backslashes, control characters, and <, >, &.
// strconv.AppendQuote is NOT a substitute — it emits Go syntax like
// \x7f, which is invalid JSON. Multi-byte UTF-8 passes through
// untouched, as encoding/json leaves valid non-ASCII unescaped.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
			continue
		}
		b = append(b, s[start:i]...)
		switch c {
		case '"':
			b = append(b, '\\', '"')
		case '\\':
			b = append(b, '\\', '\\')
		case '\n':
			b = append(b, '\\', 'n')
		case '\r':
			b = append(b, '\\', 'r')
		case '\t':
			b = append(b, '\\', 't')
		default:
			b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		}
		start = i + 1
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

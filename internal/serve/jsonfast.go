package serve

import (
	"math"
	"strconv"
)

// Hand-rolled JSON encoding for the /search response. encoding/json's
// Encoder walks the value reflectively and allocates per call; the warm
// serve path instead appends into a pooled byte buffer. The output is
// byte-identical to encoding/json for this shape (field order follows
// the struct, HTML characters are escaped the same way, a trailing
// newline matches Encoder.Encode) — equivalence-tested in
// jsonfast_test.go.

// appendSearchJSON appends resp encoded as JSON (plus the Encoder's
// trailing newline) to b.
func appendSearchJSON(b []byte, r *searchResponse) []byte {
	b = append(b, `{"query":`...)
	b = appendJSONString(b, r.Query)
	b = append(b, `,"docs":`...)
	if r.Docs == nil {
		b = append(b, "null"...)
	} else {
		b = append(b, '[')
		for i, d := range r.Docs {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendInt(b, int64(d), 10)
		}
		b = append(b, ']')
	}
	if len(r.Scores) > 0 { // omitempty: nil and empty both drop the field
		b = append(b, `,"scores":[`...)
		for i, s := range r.Scores {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendJSONFloat(b, s)
		}
		b = append(b, ']')
	}
	b = append(b, `,"docs_scored":`...)
	b = strconv.AppendInt(b, int64(r.DocsScored), 10)
	b = append(b, `,"approximated":`...)
	b = strconv.AppendBool(b, r.Approximated)
	b = append(b, `,"monitored":`...)
	b = strconv.AppendBool(b, r.MonitoredScan)
	if r.Degraded {
		b = append(b, `,"degraded":true`...)
	}
	return append(b, '}', '\n')
}

// appendJSONFloat appends f exactly as encoding/json encodes a float64:
// shortest representation in 'f' form, switching to 'e' form outside
// [1e-6, 1e21), with a negative exponent's leading zero trimmed
// ("2e-9", not "2e-09"). Equivalence-tested against encoding/json in
// jsonfast_test.go. NaN and infinities — which encoding/json rejects
// with an error — never reach a response (scores are finite sums of
// finite BM25 terms); they encode as null defensively.
func appendJSONFloat(b []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return append(b, "null"...)
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// Trim the exponent's leading zero: 2e+08 -> 2e+8, matching
		// encoding/json's cleanup.
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal, escaping exactly
// the byte set encoding/json escapes with HTML escaping on (its
// default): quotes, backslashes, control characters, and <, >, &.
// strconv.AppendQuote is NOT a substitute — it emits Go syntax like
// \x7f, which is invalid JSON. Multi-byte UTF-8 passes through
// untouched, as encoding/json leaves valid non-ASCII unescaped.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
			continue
		}
		b = append(b, s[start:i]...)
		switch c {
		case '"':
			b = append(b, '\\', '"')
		case '\\':
			b = append(b, '\\', '\\')
		case '\n':
			b = append(b, '\\', 'n')
		case '\r':
			b = append(b, '\\', 'r')
		case '\t':
			b = append(b, '\\', 't')
		default:
			b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		}
		start = i + 1
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// Package serve exposes the Green-approximated search back-end as an
// HTTP service — the deployment shape the paper motivates ("cloud-based
// companies provide web services with Service Level Agreements").
//
// Endpoints:
//
//	GET /search?q=<words>   ranked results as JSON; the per-query
//	                        matching-document loop runs under the Green
//	                        loop controller
//	GET /stats              runtime counters: queries, monitored queries,
//	                        mean monitored QoS loss, current M, documents
//	                        scored vs the precise engine
//	GET /config             the active SLA and model parameters
//	GET /healthz            liveness probe
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"

	"green/internal/core"
	"green/internal/metrics"
	"green/internal/search"
	"green/internal/workload"
)

// Config configures the service.
type Config struct {
	// SLA is the fraction of queries allowed to return a different
	// top-N result page (default 0.02).
	SLA float64
	// TopN is the result-page size (default 10).
	TopN int
	// Seed determinizes the synthetic corpus.
	Seed int64
	// CalibrationQueries sizes the startup calibration (default 500).
	CalibrationQueries int
	// SampleInterval is the recalibration monitoring interval (default
	// 10000, with a 100-query window policy: a 1% monitoring duty cycle,
	// the rate at which the paper found Green's overhead
	// indistinguishable from the base version).
	SampleInterval int
	// CorpusDocs overrides the synthetic corpus size (default 20000);
	// tests use smaller corpora.
	CorpusDocs int
	// Disabled forces precise execution (the paper's base version): the
	// loop controller is still installed, but QoS_Approx always answers
	// "do not approximate".
	Disabled bool
}

func (c Config) withDefaults() Config {
	if c.SLA == 0 {
		c.SLA = 0.02
	}
	if c.TopN == 0 {
		c.TopN = 10
	}
	if c.CalibrationQueries == 0 {
		c.CalibrationQueries = 500
	}
	if c.SampleInterval == 0 {
		c.SampleInterval = 10000
	}
	return c
}

// Server is the Green-approximated search service.
type Server struct {
	cfg    Config
	engine *search.Engine
	loop   *core.Loop

	queries    atomic.Int64
	docsScored atomic.Int64
	// Monitored executions run the full scan anyway, so they provide a
	// free estimator of the precise per-query work; the serving path
	// never pays for an extra full scan just to compute statistics.
	monitoredFullDocs atomic.Int64
	monitoredQueries  atomic.Int64
}

// New builds the corpus, runs the calibration phase, and constructs the
// operational loop controller.
func New(cfg Config) (*Server, error) {
	c := cfg.withDefaults()
	if c.SLA < 0 || c.SLA >= 1 {
		return nil, errors.New("serve: SLA must be in [0, 1)")
	}
	engine, err := search.NewEngine(search.Config{Seed: c.Seed, Docs: c.CorpusDocs})
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: c, engine: engine}

	// Calibration phase.
	calQueries, err := engine.GenerateQueries(workload.Split(c.Seed, 1), c.CalibrationQueries)
	if err != nil {
		return nil, err
	}
	knots := []float64{100, 250, 500, 1000, 2500, 5000, 10000}
	baseLevel := float64(engine.Docs())
	cal, err := core.NewLoopCalibration("serve.match", knots, baseLevel, baseLevel)
	if err != nil {
		return nil, err
	}
	losses := make([]float64, len(knots))
	work := make([]float64, len(knots))
	for _, q := range calQueries {
		precise, _ := engine.Search(q, c.TopN, 0)
		for i, k := range knots {
			approx, processed := engine.Search(q, c.TopN, int(k))
			losses[i] = metrics.QueryLoss(precise, approx)
			work[i] = float64(processed)
		}
		if err := cal.AddRun(losses, work); err != nil {
			return nil, err
		}
	}
	m, err := cal.Build()
	if err != nil {
		return nil, err
	}
	s.loop, err = core.NewLoop(core.LoopConfig{
		Name: "serve.match", Model: m, SLA: c.SLA,
		SampleInterval: c.SampleInterval,
		Policy: &core.WindowedPolicy{
			Window: 100, BaseInterval: c.SampleInterval,
		},
		Disabled: c.Disabled,
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// termsOf maps query words onto the synthetic vocabulary by hashing —
// the stand-in for a tokenizer + dictionary over a real index. Words hash
// into the *popular* post-stopword band of the Zipf vocabulary: real
// query traffic overwhelmingly hits common terms, and that is the
// distribution the engine was calibrated for.
func (s *Server) termsOf(q string) []int {
	fields := strings.Fields(strings.ToLower(q))
	terms := make([]int, 0, len(fields))
	band := s.engine.Vocab() / 10
	if band < 1 {
		band = 1
	}
	for _, f := range fields {
		h := fnv.New32a()
		h.Write([]byte(f))
		t := s.engine.StopTerms() + int(h.Sum32()%uint32(band))
		if t >= s.engine.Vocab() {
			t = s.engine.Vocab() - 1
		}
		dup := false
		for _, u := range terms {
			if u == t {
				dup = true
				break
			}
		}
		if !dup {
			terms = append(terms, t)
		}
	}
	return terms
}

// searchResponse is the /search JSON shape.
type searchResponse struct {
	Query         string `json:"query"`
	Docs          []int  `json:"docs"`
	DocsScored    int    `json:"docs_scored"`
	Approximated  bool   `json:"approximated"`
	MonitoredScan bool   `json:"monitored"`
}

// statsResponse is the /stats JSON shape.
type statsResponse struct {
	Queries           int64   `json:"queries"`
	Monitored         int64   `json:"monitored"`
	MeanMonitoredLoss float64 `json:"mean_monitored_loss"`
	CurrentM          float64 `json:"current_m"`
	DocsScored        int64   `json:"docs_scored"`
	DocsPrecise       int64   `json:"docs_precise_equivalent"`
	WorkSavedFraction float64 `json:"work_saved_fraction"`
}

// configResponse is the /config JSON shape.
type configResponse struct {
	SLA            float64 `json:"sla"`
	TopN           int     `json:"top_n"`
	SampleInterval int     `json:"sample_interval"`
	CorpusDocs     int     `json:"corpus_docs"`
	InitialM       float64 `json:"initial_m"`
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /search", s.handleSearch)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /config", s.handleConfig)
	return mux
}

// serveQuery runs one query under the loop controller.
func (s *Server) serveQuery(q search.Query) (*searchResponse, error) {
	qos := serveQoSPool.Get().(*serveQoS)
	qos.engine, qos.query, qos.topN = s.engine, q, s.cfg.TopN
	exec, err := s.loop.Begin(qos)
	if err != nil {
		qos.release()
		return nil, err
	}
	scan := s.engine.NewScan(q, s.cfg.TopN)
	i := 0
	for exec.Continue(i) && scan.Step() {
		i++
	}
	// Finish is the controller's last use of qos (Loss runs inside it),
	// so the adapter can be recycled right after.
	res := exec.Finish(i)
	qos.release()
	s.queries.Add(1)
	s.docsScored.Add(int64(scan.Processed()))
	if res.Monitored {
		s.monitoredFullDocs.Add(int64(scan.Processed()))
		s.monitoredQueries.Add(1)
	}
	return &searchResponse{
		Docs:          scan.TopN(),
		DocsScored:    scan.Processed(),
		Approximated:  res.Approximated,
		MonitoredScan: res.Monitored,
	}, nil
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	qstr := r.URL.Query().Get("q")
	if strings.TrimSpace(qstr) == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	terms := s.termsOf(qstr)
	switch mode := r.URL.Query().Get("mode"); mode {
	case "", "or":
		resp, err := s.serveQuery(search.Query{Terms: terms})
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		resp.Query = qstr
		writeJSON(w, resp)
	case "and":
		// Strict conjunctive queries bypass approximation: the QoS model
		// was calibrated for the disjunctive scan, and conjunctive match
		// sets are short enough to serve precisely.
		docs, n := s.engine.SearchAnd(search.Query{Terms: terms}, s.cfg.TopN, 0)
		s.queries.Add(1)
		s.docsScored.Add(int64(n))
		writeJSON(w, &searchResponse{Query: qstr, Docs: docs, DocsScored: n})
	default:
		http.Error(w, "mode must be 'or' or 'and'", http.StatusBadRequest)
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	execs, monitored, meanLoss := s.loop.Stats()
	scored := s.docsScored.Load()
	// Estimate the precise-equivalent work from the monitored full
	// scans: mean full-scan size times queries served.
	var precise int64
	if mq := s.monitoredQueries.Load(); mq > 0 {
		precise = s.monitoredFullDocs.Load() / mq * s.queries.Load()
	}
	saved := 0.0
	if precise > 0 {
		saved = 1 - float64(scored)/float64(precise)
		if saved < 0 {
			saved = 0
		}
	}
	writeJSON(w, statsResponse{
		Queries:           execs,
		Monitored:         monitored,
		MeanMonitoredLoss: meanLoss,
		CurrentM:          s.loop.Level(),
		DocsScored:        scored,
		DocsPrecise:       precise,
		WorkSavedFraction: saved,
	})
}

func (s *Server) handleConfig(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, configResponse{
		SLA:            s.cfg.SLA,
		TopN:           s.cfg.TopN,
		SampleInterval: s.cfg.SampleInterval,
		CorpusDocs:     s.engine.Docs(),
		InitialM:       s.loop.Level(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Loop exposes the controller, for operational tooling and tests.
func (s *Server) Loop() *core.Loop { return s.loop }

// Engine exposes the search engine, for tests.
func (s *Server) Engine() *search.Engine { return s.engine }

// serveQoS adapts a served query to core.LoopQoS. Adapters are pooled so
// the per-query fast path allocates nothing beyond the scan itself.
type serveQoS struct {
	engine   *search.Engine
	query    search.Query
	topN     int
	recorded []int
}

var serveQoSPool = sync.Pool{New: func() any { return new(serveQoS) }}

func (q *serveQoS) release() {
	*q = serveQoS{}
	serveQoSPool.Put(q)
}

func (q *serveQoS) Record(iter int) {
	q.recorded, _ = q.engine.Search(q.query, q.topN, iter)
}

func (q *serveQoS) Loss(int) float64 {
	precise, _ := q.engine.Search(q.query, q.topN, 0)
	return metrics.QueryLoss(precise, q.recorded)
}

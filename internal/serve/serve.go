// Package serve exposes the Green-approximated search back-end as an
// HTTP service — the deployment shape the paper motivates ("cloud-based
// companies provide web services with Service Level Agreements").
//
// Endpoints:
//
//	GET /search?q=<words>   ranked results as JSON; the per-query
//	                        matching-document loop runs under the Green
//	                        loop controller
//	GET /stats              runtime counters: queries, monitored queries,
//	                        mean monitored QoS loss, current M, documents
//	                        scored vs the precise engine, and the
//	                        resilience state (breaker, shedding, snapshots)
//	GET /config             the active SLA and model parameters
//	GET /healthz            liveness probe: the process is up
//	GET /readyz             readiness probe: the service is serving at
//	                        full quality (503 while degraded: breaker
//	                        open or shedding)
//
// The serving path degrades instead of dying: requests beyond the
// in-flight cap are shed with 503 + Retry-After, requests that hit
// their deadline return the partial results scored so far, QoS-callback
// panics are contained by the controller's circuit breaker
// (internal/core/resilience.go), and the controller state is
// periodically persisted crash-safely (internal/persist) so a restart
// resumes recalibration instead of starting cold.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"green/internal/chaos"
	"green/internal/core"
	"green/internal/metrics"
	"green/internal/persist"
	"green/internal/search"
	"green/internal/workload"
)

// snapshotName keys the loop controller's snapshot in the state store.
const snapshotName = "serve.match"

// Config configures the service.
type Config struct {
	// SLA is the fraction of queries allowed to return a different
	// top-N result page (default 0.02).
	SLA float64
	// TopN is the result-page size (default 10).
	TopN int
	// Seed determinizes the synthetic corpus.
	Seed int64
	// CalibrationQueries sizes the startup calibration (default 500).
	CalibrationQueries int
	// SampleInterval is the recalibration monitoring interval (default
	// 10000, with a 100-query window policy: a 1% monitoring duty cycle,
	// the rate at which the paper found Green's overhead
	// indistinguishable from the base version).
	SampleInterval int
	// CorpusDocs overrides the synthetic corpus size (default 20000);
	// tests use smaller corpora.
	CorpusDocs int
	// Disabled forces precise execution (the paper's base version): the
	// loop controller is still installed, but QoS_Approx always answers
	// "do not approximate".
	Disabled bool

	// MaxInFlight caps concurrently served /search requests; excess
	// requests are shed with 503 + Retry-After rather than queued
	// unboundedly. Zero means 128; negative disables the cap.
	MaxInFlight int
	// RequestTimeout bounds one /search request; at the deadline the
	// scan stops and the partial results scored so far are served
	// (degraded), rather than the request queuing forever. Zero means
	// 2s; negative disables the deadline.
	RequestTimeout time.Duration
	// StateDir, when non-empty, enables crash-safe persistence of the
	// controller state: a validated snapshot is restored at startup and
	// snapshots are written every SnapshotInterval and on SaveState.
	StateDir string
	// SnapshotInterval is the period of the background snapshot loop
	// (default 5s).
	SnapshotInterval time.Duration
	// BreakerThreshold / BreakerCooldown tune the controller's panic
	// circuit breaker (see core.LoopConfig); zeros take the core
	// defaults.
	BreakerThreshold int
	BreakerCooldown  int
	// Chaos, when non-nil, injects deterministic faults into the QoS
	// callbacks (the fault-injection harness; tests and the chaos-smoke
	// CI stage).
	Chaos *chaos.Injector
}

func (c Config) withDefaults() Config {
	if c.SLA == 0 {
		c.SLA = 0.02
	}
	if c.TopN == 0 {
		c.TopN = 10
	}
	if c.CalibrationQueries == 0 {
		c.CalibrationQueries = 500
	}
	if c.SampleInterval == 0 {
		c.SampleInterval = 10000
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 128
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 2 * time.Second
	}
	if c.SnapshotInterval == 0 {
		c.SnapshotInterval = 5 * time.Second
	}
	return c
}

// Server is the Green-approximated search service.
type Server struct {
	cfg    Config
	engine *search.Engine
	loop   *core.Loop

	queries    atomic.Int64
	docsScored atomic.Int64
	// Monitored executions run the full scan anyway, so they provide a
	// free estimator of the precise per-query work; the serving path
	// never pays for an extra full scan just to compute statistics.
	monitoredFullDocs atomic.Int64
	monitoredQueries  atomic.Int64

	// Resilience state.
	inFlight    atomic.Int64
	ops         metrics.OpsCounters
	store       *persist.Store
	modelSig    string
	restoreNote string // "disabled" | "cold" | "restored" | "rejected: …"
}

// New builds the corpus, runs the calibration phase, constructs the
// operational loop controller, and — when a state directory is
// configured — restores the most recent valid controller snapshot.
func New(cfg Config) (*Server, error) {
	c := cfg.withDefaults()
	if c.SLA < 0 || c.SLA >= 1 {
		return nil, errors.New("serve: SLA must be in [0, 1)")
	}
	engine, err := search.NewEngine(search.Config{Seed: c.Seed, Docs: c.CorpusDocs})
	if err != nil {
		return nil, err
	}
	s := &Server{cfg: c, engine: engine, restoreNote: "disabled"}

	// Calibration phase.
	calQueries, err := engine.GenerateQueries(workload.Split(c.Seed, 1), c.CalibrationQueries)
	if err != nil {
		return nil, err
	}
	knots := []float64{100, 250, 500, 1000, 2500, 5000, 10000}
	baseLevel := float64(engine.Docs())
	cal, err := core.NewLoopCalibration(snapshotName, knots, baseLevel, baseLevel)
	if err != nil {
		return nil, err
	}
	losses := make([]float64, len(knots))
	work := make([]float64, len(knots))
	for _, q := range calQueries {
		precise, _ := engine.Search(q, c.TopN, 0)
		for i, k := range knots {
			approx, processed := engine.Search(q, c.TopN, int(k))
			losses[i] = metrics.QueryLoss(precise, approx)
			work[i] = float64(processed)
		}
		if err := cal.AddRun(losses, work); err != nil {
			return nil, err
		}
	}
	m, err := cal.Build()
	if err != nil {
		return nil, err
	}
	s.loop, err = core.NewLoop(core.LoopConfig{
		Name: snapshotName, Model: m, SLA: c.SLA,
		SampleInterval: c.SampleInterval,
		Policy: &core.WindowedPolicy{
			Window: 100, BaseInterval: c.SampleInterval,
		},
		Disabled:         c.Disabled,
		BreakerThreshold: c.BreakerThreshold,
		BreakerCooldown:  c.BreakerCooldown,
	})
	if err != nil {
		return nil, err
	}

	if c.StateDir != "" {
		if err := s.openStateAndRestore(m); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// openStateAndRestore opens the state store and applies the persisted
// snapshot if one exists and survives validation. Restore failures are
// *recorded*, never fatal: a service must come up (cold) from any
// on-disk state, including a corrupted or foreign snapshot.
func (s *Server) openStateAndRestore(m any) error {
	store, err := persist.Open(s.cfg.StateDir)
	if err != nil {
		return err
	}
	// The signature binds snapshots to the exact calibration and serving
	// configuration: a different corpus seed, size, SLA, or page size
	// invalidates the persisted levels.
	sig, err := persist.Signature(m, s.cfg.SLA, s.cfg.Seed, s.engine.Docs(), s.cfg.TopN)
	if err != nil {
		return err
	}
	s.store, s.modelSig = store, sig
	switch data, err := store.Load(snapshotName, sig); {
	case err == nil:
		if rerr := s.loop.RestoreStateJSON(data); rerr != nil {
			s.ops.RestoreRejected.Add(1)
			s.restoreNote = "rejected: " + rerr.Error()
		} else {
			s.restoreNote = "restored"
		}
	case errors.Is(err, fs.ErrNotExist):
		s.restoreNote = "cold"
	default:
		// Corrupt, torn, foreign, or wrong-version snapshot: start cold.
		s.ops.RestoreRejected.Add(1)
		s.restoreNote = "rejected: " + err.Error()
	}
	return nil
}

// RestoreNote reports what happened to the persisted state at startup.
func (s *Server) RestoreNote() string { return s.restoreNote }

// SaveState writes one crash-safe snapshot of the controller state now.
// A no-op without a state directory.
func (s *Server) SaveState() error {
	if s.store == nil {
		return nil
	}
	data, err := s.loop.MarshalState()
	if err == nil {
		err = s.store.Save(snapshotName, s.modelSig, data)
	}
	if err != nil {
		s.ops.SnapshotErrors.Add(1)
		return err
	}
	s.ops.SnapshotSaves.Add(1)
	return nil
}

// StartSnapshotLoop launches the periodic background snapshot writer
// and returns a stop function (idempotent). Stopping does not write a
// final snapshot; call SaveState at shutdown for that.
func (s *Server) StartSnapshotLoop() (stop func()) {
	if s.store == nil {
		return func() {}
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(s.cfg.SnapshotInterval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				_ = s.SaveState() // failures are counted in ops
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// termsOf maps query words onto the synthetic vocabulary by hashing —
// the stand-in for a tokenizer + dictionary over a real index. Words hash
// into the *popular* post-stopword band of the Zipf vocabulary: real
// query traffic overwhelmingly hits common terms, and that is the
// distribution the engine was calibrated for.
func (s *Server) termsOf(q string) []int {
	fields := strings.Fields(strings.ToLower(q))
	terms := make([]int, 0, len(fields))
	band := s.engine.Vocab() / 10
	if band < 1 {
		band = 1
	}
	for _, f := range fields {
		h := fnv.New32a()
		h.Write([]byte(f))
		t := s.engine.StopTerms() + int(h.Sum32()%uint32(band))
		if t >= s.engine.Vocab() {
			t = s.engine.Vocab() - 1
		}
		dup := false
		for _, u := range terms {
			if u == t {
				dup = true
				break
			}
		}
		if !dup {
			terms = append(terms, t)
		}
	}
	return terms
}

// searchResponse is the /search JSON shape.
type searchResponse struct {
	Query         string `json:"query"`
	Docs          []int  `json:"docs"`
	DocsScored    int    `json:"docs_scored"`
	Approximated  bool   `json:"approximated"`
	MonitoredScan bool   `json:"monitored"`
	// Degraded marks a response whose scan was cut short at the request
	// deadline: the results are the best scored so far, not the
	// controller's chosen approximation level.
	Degraded bool `json:"degraded,omitempty"`
}

// statsResponse is the /stats JSON shape.
type statsResponse struct {
	Queries           int64   `json:"queries"`
	Monitored         int64   `json:"monitored"`
	MeanMonitoredLoss float64 `json:"mean_monitored_loss"`
	CurrentM          float64 `json:"current_m"`
	DocsScored        int64   `json:"docs_scored"`
	DocsPrecise       int64   `json:"docs_precise_equivalent"`
	WorkSavedFraction float64 `json:"work_saved_fraction"`

	// Resilience surface.
	Degraded        bool                `json:"degraded"`
	DegradedReasons []string            `json:"degraded_reasons,omitempty"`
	BreakerState    string              `json:"breaker_state"`
	BreakerTrips    int64               `json:"breaker_trips"`
	ContainedPanics int64               `json:"contained_panics"`
	InFlight        int64               `json:"in_flight"`
	Restore         string              `json:"restore"`
	Ops             metrics.OpsSnapshot `json:"ops"`
}

// configResponse is the /config JSON shape.
type configResponse struct {
	SLA            float64 `json:"sla"`
	TopN           int     `json:"top_n"`
	SampleInterval int     `json:"sample_interval"`
	CorpusDocs     int     `json:"corpus_docs"`
	InitialM       float64 `json:"initial_m"`
	MaxInFlight    int     `json:"max_in_flight"`
	RequestTimeout string  `json:"request_timeout"`
	StateDir       string  `json:"state_dir,omitempty"`
}

// readyzResponse is the /readyz JSON shape.
type readyzResponse struct {
	Ready   bool     `json:"ready"`
	Reasons []string `json:"reasons,omitempty"`
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness only: the process is up and the mux is serving. A
		// degraded service is still alive — restarting it would not help
		// — so /healthz stays 200 while /readyz goes 503.
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /search", s.withResilience(s.handleSearch))
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /config", s.handleConfig)
	return mux
}

// withResilience wraps a handler with the degraded-mode serving layer:
// the in-flight cap (shed with 503 + Retry-After instead of queuing
// unboundedly) and the per-request deadline.
func (s *Server) withResilience(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.MaxInFlight > 0 {
			if s.inFlight.Add(1) > int64(s.cfg.MaxInFlight) {
				s.inFlight.Add(-1)
				s.ops.Shed.Add(1)
				w.Header().Set("Retry-After", "1")
				http.Error(w, "overloaded: request shed", http.StatusServiceUnavailable)
				return
			}
			defer s.inFlight.Add(-1)
		}
		if s.cfg.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h(w, r)
	}
}

// degradedReasons reports why the service is not at full quality (empty
// when it is).
func (s *Server) degradedReasons() []string {
	var reasons []string
	if b := s.loop.Breaker(); b.State != core.BreakerClosed {
		reasons = append(reasons, "breaker-"+b.State.String())
	}
	if s.cfg.MaxInFlight > 0 && s.inFlight.Load() >= int64(s.cfg.MaxInFlight) {
		reasons = append(reasons, "shedding")
	}
	return reasons
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	reasons := s.degradedReasons()
	resp := readyzResponse{Ready: len(reasons) == 0, Reasons: reasons}
	if !resp.Ready {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(resp)
		return
	}
	writeJSON(w, resp)
}

// serveQuery runs one query under the loop controller, honoring the
// request context: if the deadline expires mid-scan the partial
// results scored so far are returned, marked degraded.
func (s *Server) serveQuery(ctx context.Context, q search.Query) (*searchResponse, error) {
	qos := serveQoSPool.Get().(*serveQoS)
	qos.engine, qos.query, qos.topN = s.engine, q, s.cfg.TopN
	qos.chaos = s.cfg.Chaos
	exec, err := s.loop.Begin(qos)
	if err != nil {
		qos.release()
		return nil, err
	}
	scan := s.engine.NewScan(q, s.cfg.TopN)
	i := 0
	// An already-expired deadline still serves (an empty page beats an
	// error); mid-scan, the deadline check is amortized over 64 scored
	// documents so the fast path stays a couple of instructions per
	// iteration.
	degraded := ctx.Err() != nil
	for !degraded && exec.Continue(i) && scan.Step() {
		i++
		if i&0x3f == 0 && ctx.Err() != nil {
			degraded = true
		}
	}
	// Finish is the controller's last use of qos (Loss runs inside it),
	// so the adapter can be recycled right after.
	res := exec.Finish(i)
	qos.release()
	if degraded {
		s.ops.DeadlinePartial.Add(1)
	}
	s.queries.Add(1)
	s.docsScored.Add(int64(scan.Processed()))
	if res.Monitored && !res.ContainedPanic && !degraded {
		s.monitoredFullDocs.Add(int64(scan.Processed()))
		s.monitoredQueries.Add(1)
	}
	return &searchResponse{
		Docs:          scan.TopN(),
		DocsScored:    scan.Processed(),
		Approximated:  res.Approximated,
		MonitoredScan: res.Monitored,
		Degraded:      degraded,
	}, nil
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	qstr := r.URL.Query().Get("q")
	if strings.TrimSpace(qstr) == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	terms := s.termsOf(qstr)
	switch mode := r.URL.Query().Get("mode"); mode {
	case "", "or":
		resp, err := s.serveQuery(r.Context(), search.Query{Terms: terms})
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		resp.Query = qstr
		writeJSON(w, resp)
	case "and":
		// Strict conjunctive queries bypass approximation: the QoS model
		// was calibrated for the disjunctive scan, and conjunctive match
		// sets are short enough to serve precisely.
		docs, n := s.engine.SearchAnd(search.Query{Terms: terms}, s.cfg.TopN, 0)
		s.queries.Add(1)
		s.docsScored.Add(int64(n))
		writeJSON(w, &searchResponse{Query: qstr, Docs: docs, DocsScored: n})
	default:
		http.Error(w, "mode must be 'or' or 'and'", http.StatusBadRequest)
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	execs, monitored, meanLoss := s.loop.Stats()
	scored := s.docsScored.Load()
	// Estimate the precise-equivalent work from the monitored full
	// scans: mean full-scan size times queries served.
	var precise int64
	if mq := s.monitoredQueries.Load(); mq > 0 {
		precise = s.monitoredFullDocs.Load() / mq * s.queries.Load()
	}
	saved := 0.0
	if precise > 0 {
		saved = 1 - float64(scored)/float64(precise)
		if saved < 0 {
			saved = 0
		}
	}
	reasons := s.degradedReasons()
	brk := s.loop.Breaker()
	writeJSON(w, statsResponse{
		Queries:           execs,
		Monitored:         monitored,
		MeanMonitoredLoss: meanLoss,
		CurrentM:          s.loop.Level(),
		DocsScored:        scored,
		DocsPrecise:       precise,
		WorkSavedFraction: saved,
		Degraded:          len(reasons) > 0,
		DegradedReasons:   reasons,
		BreakerState:      brk.State.String(),
		BreakerTrips:      brk.Trips,
		ContainedPanics:   brk.ContainedPanics,
		InFlight:          s.inFlight.Load(),
		Restore:           s.restoreNote,
		Ops:               s.ops.Snapshot(),
	})
}

func (s *Server) handleConfig(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, configResponse{
		SLA:            s.cfg.SLA,
		TopN:           s.cfg.TopN,
		SampleInterval: s.cfg.SampleInterval,
		CorpusDocs:     s.engine.Docs(),
		InitialM:       s.loop.Level(),
		MaxInFlight:    s.cfg.MaxInFlight,
		RequestTimeout: s.cfg.RequestTimeout.String(),
		StateDir:       s.cfg.StateDir,
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Loop exposes the controller, for operational tooling and tests.
func (s *Server) Loop() *core.Loop { return s.loop }

// Engine exposes the search engine, for tests.
func (s *Server) Engine() *search.Engine { return s.engine }

// Ops exposes the operational counters, for tooling and tests.
func (s *Server) Ops() *metrics.OpsCounters { return &s.ops }

// serveQoS adapts a served query to core.LoopQoS. Adapters are pooled so
// the per-query fast path allocates nothing beyond the scan itself. The
// chaos injector hooks live here: the QoS callbacks are exactly the
// user-code surface the controller's panic containment guards, so this
// is where the fault-injection harness aims.
type serveQoS struct {
	engine   *search.Engine
	query    search.Query
	topN     int
	recorded []int
	chaos    *chaos.Injector
}

var serveQoSPool = sync.Pool{New: func() any { return new(serveQoS) }}

func (q *serveQoS) release() {
	*q = serveQoS{}
	serveQoSPool.Put(q)
}

func (q *serveQoS) Record(iter int) {
	q.chaos.MaybeDelay("qos.record")
	q.chaos.MaybePanic("qos.record")
	q.recorded, _ = q.engine.Search(q.query, q.topN, iter)
}

func (q *serveQoS) Loss(int) float64 {
	q.chaos.MaybeDelay("qos.loss")
	q.chaos.MaybePanic("qos.loss")
	precise, _ := q.engine.Search(q.query, q.topN, 0)
	return metrics.QueryLoss(precise, q.recorded)
}

// Package serve exposes the Green-approximated search back-end as an
// HTTP service — the deployment shape the paper motivates ("cloud-based
// companies provide web services with Service Level Agreements").
//
// Endpoints:
//
//	GET /search?q=<words>   ranked results as JSON; the per-query
//	                        matching-document loop runs under the Green
//	                        loop controller
//	GET /stats              runtime counters: queries, monitored queries,
//	                        mean monitored QoS loss, current M, documents
//	                        scored vs the precise engine, and the
//	                        resilience state (breaker, shedding, snapshots)
//	GET /config             the active SLA and model parameters
//	GET /healthz            liveness probe: the process is up
//	GET /readyz             readiness probe: the service is serving at
//	                        full quality (503 while degraded: breaker
//	                        open or shedding)
//
// The serving path degrades instead of dying: requests beyond the
// in-flight cap are shed with 503 + Retry-After, requests that hit
// their deadline return the partial results scored so far, QoS-callback
// panics are contained by the controller's circuit breaker
// (internal/core/resilience.go), and the controller state is
// periodically persisted crash-safely (internal/persist) so a restart
// resumes recalibration instead of starting cold.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"io/fs"
	"math"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"green/internal/chaos"
	"green/internal/core"
	"green/internal/metrics"
	"green/internal/model"
	"green/internal/persist"
	"green/internal/search"
	"green/internal/workload"
)

const (
	// snapshotName names the disjunctive match-loop controller.
	snapshotName = "serve.match"
	// andLoopName names the optional conjunctive-scan controller.
	andLoopName = "serve.and"
	// stateName keys the bundled registry snapshot (all registered
	// controllers in one file) in the state store.
	stateName = "serve.controllers"
)

// Config configures the service.
type Config struct {
	// SLA is the fraction of queries allowed to return a different
	// top-N result page (default 0.02).
	SLA float64
	// TopN is the result-page size (default 10).
	TopN int
	// Seed determinizes the synthetic corpus.
	Seed int64
	// CalibrationQueries sizes the startup calibration (default 500).
	CalibrationQueries int
	// SampleInterval is the recalibration monitoring interval (default
	// 10000, with a 100-query window policy: a 1% monitoring duty cycle,
	// the rate at which the paper found Green's overhead
	// indistinguishable from the base version).
	SampleInterval int
	// CorpusDocs overrides the synthetic corpus size (default 20000);
	// tests use smaller corpora.
	CorpusDocs int
	// Disabled forces precise execution (the paper's base version): the
	// loop controller is still installed, but QoS_Approx always answers
	// "do not approximate".
	Disabled bool
	// Selector enables the proactive Select stage on the match loop:
	// calibration additionally fits per-feature-bucket loss curves
	// (bucketed on summed posting-list length) and installs the built
	// selector, so each query's approximation level is chosen from its
	// own bucket before the scan runs instead of the one fleet-wide
	// reactive level. Off by default — the reactive law alone is the
	// paper's configuration.
	Selector bool
	// ApproxAnd installs a second approximation site: the conjunctive
	// (mode=and) scan runs under its own loop controller, calibrated
	// against the precise conjunctive results. Off by default —
	// conjunctive match sets are usually short enough to serve precisely.
	ApproxAnd bool
	// ShardIndex/ShardCount make this server a shard worker: the engine
	// keeps only its partition of the corpus (global doc ids and scoring
	// preserved — see search.Config), so a coordinator can scatter a
	// query across ShardCount workers and merge the partials into the
	// unsharded page. ShardCount zero or one serves the whole corpus.
	ShardIndex, ShardCount int

	// MaxInFlight caps concurrently served /search requests; excess
	// requests are shed with 503 + Retry-After rather than queued
	// unboundedly. Zero means 128; negative disables the cap.
	MaxInFlight int
	// RequestTimeout bounds one /search request; at the deadline the
	// scan stops and the partial results scored so far are served
	// (degraded), rather than the request queuing forever. Zero means
	// 2s; negative disables the deadline.
	RequestTimeout time.Duration
	// StateDir, when non-empty, enables crash-safe persistence of the
	// controller state: a validated snapshot is restored at startup and
	// snapshots are written every SnapshotInterval and on SaveState.
	StateDir string
	// SnapshotInterval is the period of the background snapshot loop
	// (default 5s).
	SnapshotInterval time.Duration
	// QueryCacheSize bounds the preparsed-query cache on the /search
	// path. The workload's Zipfian head means a few thousand entries
	// absorb nearly all traffic; a hit serves without parsing — or
	// allocating — anything. Zero means 4096; negative disables caching.
	QueryCacheSize int
	// BreakerThreshold / BreakerCooldown tune the controller's panic
	// circuit breaker (see core.LoopConfig); zeros take the core
	// defaults.
	BreakerThreshold int
	BreakerCooldown  int
	// Chaos, when non-nil, injects deterministic faults into the QoS
	// callbacks (the fault-injection harness; tests and the chaos-smoke
	// CI stage).
	Chaos *chaos.Injector
}

func (c Config) withDefaults() Config {
	if c.SLA == 0 {
		c.SLA = 0.02
	}
	if c.TopN == 0 {
		c.TopN = 10
	}
	if c.CalibrationQueries == 0 {
		c.CalibrationQueries = 500
	}
	if c.SampleInterval == 0 {
		c.SampleInterval = 10000
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 128
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 2 * time.Second
	}
	if c.SnapshotInterval == 0 {
		c.SnapshotInterval = 5 * time.Second
	}
	if c.QueryCacheSize == 0 {
		c.QueryCacheSize = 4096
	}
	return c
}

// Server is the Green-approximated search service. Every approximation
// site it hosts is a controller registered in reg; the persistence,
// stats, and readiness surfaces enumerate the registry rather than
// hard-wiring any single controller.
type Server struct {
	cfg    Config
	engine *search.Engine
	reg    *core.Registry
	loop   *core.Loop // the disjunctive match loop (always registered)
	and    *core.Loop // the conjunctive loop; nil unless cfg.ApproxAnd

	queries    atomic.Int64
	docsScored atomic.Int64
	// Monitored executions run the full scan anyway, so they provide a
	// free estimator of the precise per-query work; the serving path
	// never pays for an extra full scan just to compute statistics.
	monitoredFullDocs atomic.Int64
	monitoredQueries  atomic.Int64

	// Resilience state.
	inFlight      atomic.Int64
	qcache        *queryCache
	ops           metrics.OpsCounters
	store         *persist.Store
	modelSig      string
	restoreNote   string // "disabled" | "cold" | "restored" | "rejected: …"
	restoreReport core.RestoreReport

	// Fleet control-plane surface: the calibrated models back /model
	// (per-level candidate settings for the coordinator's combination
	// search) and loops backs /budget (pushed per-shard levels).
	models map[string]*model.LoopModel
	loops  map[string]*core.Loop
}

// New builds the corpus, runs the calibration phase, constructs the
// operational loop controller, and — when a state directory is
// configured — restores the most recent valid controller snapshot.
func New(cfg Config) (*Server, error) {
	c := cfg.withDefaults()
	if c.SLA < 0 || c.SLA >= 1 {
		return nil, errors.New("serve: SLA must be in [0, 1)")
	}
	engine, err := search.NewEngine(search.Config{
		Seed: c.Seed, Docs: c.CorpusDocs,
		ShardIndex: c.ShardIndex, ShardCount: c.ShardCount,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg: c, engine: engine, reg: core.NewRegistry(), restoreNote: "disabled",
		qcache: newQueryCache(c.QueryCacheSize),
		models: make(map[string]*model.LoopModel),
		loops:  make(map[string]*core.Loop),
	}

	// Calibration phase.
	calQueries, err := engine.GenerateQueries(workload.Split(c.Seed, 1), c.CalibrationQueries)
	if err != nil {
		return nil, err
	}
	knots := []float64{100, 250, 500, 1000, 2500, 5000, 10000}
	var feat func(search.Query) core.Features
	if c.Selector {
		feat = func(q search.Query) core.Features { return s.queryFeat(q.Terms) }
	}
	m, sel, err := s.calibrateLoop(snapshotName, knots, calQueries, feat, func(q search.Query, maxDocs int) ([]int, int) {
		return engine.Search(q, c.TopN, maxDocs)
	})
	if err != nil {
		return nil, err
	}
	s.loop, err = s.newServeLoop(snapshotName, m)
	if err != nil {
		return nil, err
	}
	if sel != nil {
		// Install before any restore so a selector-bearing snapshot can
		// rehydrate the bucket correction factors.
		s.loop.InstallSelector(sel)
	}
	if err := s.reg.Register(s.loop); err != nil {
		return nil, err
	}
	s.models[snapshotName], s.loops[snapshotName] = m, s.loop

	// The signature binds snapshots to the exact calibration and serving
	// configuration: a different corpus seed, size, SLA, page size,
	// shard partition, or site layout invalidates the persisted levels.
	sigParts := []any{m, c.SLA, c.Seed, engine.Docs(), c.TopN, c.ShardIndex, c.ShardCount}

	if c.ApproxAnd {
		// Conjunctive match streams are much shorter than disjunctive
		// ones, so the candidate levels sit correspondingly lower.
		andKnots := []float64{5, 10, 25, 50, 100, 250}
		mAnd, _, err := s.calibrateLoop(andLoopName, andKnots, calQueries, nil, func(q search.Query, maxDocs int) ([]int, int) {
			return engine.SearchAnd(q, c.TopN, maxDocs)
		})
		if err != nil {
			return nil, err
		}
		s.and, err = s.newServeLoop(andLoopName, mAnd)
		if err != nil {
			return nil, err
		}
		if err := s.reg.Register(s.and); err != nil {
			return nil, err
		}
		s.models[andLoopName], s.loops[andLoopName] = mAnd, s.and
		sigParts = append(sigParts, mAnd, "and")
	}

	if c.StateDir != "" {
		if err := s.openStateAndRestore(sigParts); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// calibrateLoop runs the calibration phase for one scan shape: for each
// training query, the loss and work of capping the scan at each
// candidate level, against the uncapped (precise) result of the same
// run function. A non-nil feat function additionally tags every run
// with its query's feature vector (bucket edges derived from the
// training distribution's quartiles) and builds the per-input selector
// beside the reactive model; a degenerate feature distribution silently
// yields no selector (reactive-only).
func (s *Server) calibrateLoop(name string, knots []float64, calQueries []search.Query, feat func(search.Query) core.Features, run func(q search.Query, maxDocs int) ([]int, int)) (*model.LoopModel, *core.LoopSelector, error) {
	baseLevel := float64(s.engine.Docs())
	cal, err := core.NewLoopCalibration(name, knots, baseLevel, baseLevel)
	if err != nil {
		return nil, nil, err
	}
	if feat != nil {
		keys := make([]float64, 0, len(calQueries))
		for _, q := range calQueries {
			if f := feat(q); f.Valid {
				keys = append(keys, f.Key)
			}
		}
		edges := featureEdges(keys, selectorBuckets)
		if edges == nil {
			feat = nil
		} else if err := cal.FeatureBuckets(edges); err != nil {
			return nil, nil, err
		}
	}
	losses := make([]float64, len(knots))
	work := make([]float64, len(knots))
	for _, q := range calQueries {
		precise, _ := run(q, 0)
		for i, k := range knots {
			approx, processed := run(q, int(k))
			losses[i] = metrics.QueryLoss(precise, approx)
			work[i] = float64(processed)
		}
		if feat != nil {
			if err := cal.AddRunFeat(feat(q), losses, work); err != nil {
				return nil, nil, err
			}
		} else if err := cal.AddRun(losses, work); err != nil {
			return nil, nil, err
		}
	}
	m, err := cal.Build()
	if err != nil || feat == nil {
		return m, nil, err
	}
	sel, err := cal.BuildSelector()
	if err != nil {
		return nil, nil, err
	}
	return m, sel, nil
}

// newServeLoop constructs one serving loop controller with the
// service-wide SLA, monitoring cadence, and breaker tuning.
func (s *Server) newServeLoop(name string, m *model.LoopModel) (*core.Loop, error) {
	return core.NewLoop(core.LoopConfig{
		Name: name, Model: m, SLA: s.cfg.SLA,
		SampleInterval: s.cfg.SampleInterval,
		Policy: &core.WindowedPolicy{
			Window: 100, BaseInterval: s.cfg.SampleInterval,
		},
		Disabled:         s.cfg.Disabled,
		BreakerThreshold: s.cfg.BreakerThreshold,
		BreakerCooldown:  s.cfg.BreakerCooldown,
	})
}

// openStateAndRestore opens the state store and applies the persisted
// registry bundle if one exists and survives validation. Restore
// failures are *recorded*, never fatal: a service must come up (cold)
// from any on-disk state, including a corrupted or foreign snapshot —
// and a bundle with one poisoned entry still restores every other
// controller.
func (s *Server) openStateAndRestore(sigParts []any) error {
	store, err := persist.Open(s.cfg.StateDir)
	if err != nil {
		return err
	}
	sig, err := persist.Signature(sigParts...)
	if err != nil {
		return err
	}
	s.store, s.modelSig = store, sig
	s.restoreReport = make(core.RestoreReport)
	switch data, err := store.Load(stateName, sig); {
	case err == nil:
		rep, rerr := s.reg.RestoreAllJSON(data)
		if rerr != nil {
			// The bundle itself is unusable (decode/version failure).
			s.ops.RestoreRejected.Add(1)
			s.restoreNote = "rejected: " + rerr.Error()
			s.noteAllControllers(s.restoreNote)
			return nil
		}
		s.restoreReport = rep
		s.restoreNote = summarizeRestore(rep)
		if rep.Rejected() {
			s.ops.RestoreRejected.Add(1)
		}
	case errors.Is(err, fs.ErrNotExist):
		s.restoreNote = "cold"
		s.noteAllControllers("cold")
	default:
		// Corrupt, torn, foreign, or wrong-version snapshot: start cold.
		s.ops.RestoreRejected.Add(1)
		s.restoreNote = "rejected: " + err.Error()
		s.noteAllControllers(s.restoreNote)
	}
	return nil
}

// noteAllControllers records one outcome for every registered controller
// (the whole-bundle cases, where no per-controller restore ran).
func (s *Server) noteAllControllers(note string) {
	for _, name := range s.reg.Names() {
		s.restoreReport[name] = note
	}
}

// summarizeRestore folds a per-controller restore report into the
// service-level note: any rejection surfaces first (with its
// controller), else one restored controller makes the boot "restored",
// else everything came up cold.
func summarizeRestore(rep core.RestoreReport) string {
	restored := false
	for _, name := range sortedNames(rep) {
		note := rep[name]
		if strings.HasPrefix(note, "rejected:") {
			return "rejected: " + name + ": " + strings.TrimSpace(strings.TrimPrefix(note, "rejected:"))
		}
		if note == "restored" {
			restored = true
		}
	}
	if restored {
		return "restored"
	}
	return "cold"
}

func sortedNames(rep core.RestoreReport) []string {
	names := make([]string, 0, len(rep))
	for name := range rep {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// RestoreNote reports what happened to the persisted state at startup.
func (s *Server) RestoreNote() string { return s.restoreNote }

// RestoreReport reports the per-controller restore outcomes at startup
// (nil when persistence is disabled).
func (s *Server) RestoreReport() core.RestoreReport { return s.restoreReport }

// SaveState writes one crash-safe snapshot of every registered
// controller's state now. A no-op without a state directory.
func (s *Server) SaveState() error {
	if s.store == nil {
		return nil
	}
	if err := s.store.SaveFrom(stateName, s.modelSig, s.reg); err != nil {
		s.ops.SnapshotErrors.Add(1)
		return err
	}
	s.ops.SnapshotSaves.Add(1)
	return nil
}

// StartSnapshotLoop launches the periodic background snapshot writer
// and returns a stop function (idempotent). Stopping does not write a
// final snapshot; call SaveState at shutdown for that.
func (s *Server) StartSnapshotLoop() (stop func()) {
	if s.store == nil {
		return func() {}
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(s.cfg.SnapshotInterval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				_ = s.SaveState() // failures are counted in ops
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// termsOf maps query words onto the synthetic vocabulary by hashing —
// the stand-in for a tokenizer + dictionary over a real index. Words hash
// into the *popular* post-stopword band of the Zipf vocabulary: real
// query traffic overwhelmingly hits common terms, and that is the
// distribution the engine was calibrated for.
func (s *Server) termsOf(q string) []int {
	fields := strings.Fields(strings.ToLower(q))
	terms := make([]int, 0, len(fields))
	band := s.engine.Vocab() / 10
	if band < 1 {
		band = 1
	}
	for _, f := range fields {
		h := fnv.New32a()
		h.Write([]byte(f))
		t := s.engine.StopTerms() + int(h.Sum32()%uint32(band))
		if t >= s.engine.Vocab() {
			t = s.engine.Vocab() - 1
		}
		dup := false
		for _, u := range terms {
			if u == t {
				dup = true
				break
			}
		}
		if !dup {
			terms = append(terms, t)
		}
	}
	return terms
}

// searchResponse is the /search JSON shape.
type searchResponse struct {
	Query string `json:"query"`
	Docs  []int  `json:"docs"`
	// Scores carries the exact per-doc scores of Docs, emitted only when
	// the request asks (scores=1): a coordinator merging shard partials
	// ranks on exact scores so the merged page is byte-identical to the
	// unsharded engine's.
	Scores        []float64 `json:"scores,omitempty"`
	DocsScored    int       `json:"docs_scored"`
	Approximated  bool      `json:"approximated"`
	MonitoredScan bool      `json:"monitored"`
	// Degraded marks a response whose scan was cut short at the request
	// deadline: the results are the best scored so far, not the
	// controller's chosen approximation level.
	Degraded bool `json:"degraded,omitempty"`
}

// statsResponse is the /stats JSON shape.
type statsResponse struct {
	Queries           int64   `json:"queries"`
	Monitored         int64   `json:"monitored"`
	MeanMonitoredLoss float64 `json:"mean_monitored_loss"`
	CurrentM          float64 `json:"current_m"`
	DocsScored        int64   `json:"docs_scored"`
	DocsPrecise       int64   `json:"docs_precise_equivalent"`
	WorkSavedFraction float64 `json:"work_saved_fraction"`

	// Resilience surface. The flat breaker fields describe the match
	// loop (backward compatible); Controllers carries one row per
	// registered controller.
	Degraded        bool                      `json:"degraded"`
	DegradedReasons []string                  `json:"degraded_reasons,omitempty"`
	BreakerState    string                    `json:"breaker_state"`
	BreakerTrips    int64                     `json:"breaker_trips"`
	ContainedPanics int64                     `json:"contained_panics"`
	InFlight        int64                     `json:"in_flight"`
	Restore         string                    `json:"restore"`
	RestoreDetail   map[string]string         `json:"restore_controllers,omitempty"`
	Controllers     []metrics.ControllerStats `json:"controllers"`
	Ops             metrics.OpsSnapshot       `json:"ops"`
}

// configResponse is the /config JSON shape.
type configResponse struct {
	SLA            float64  `json:"sla"`
	TopN           int      `json:"top_n"`
	SampleInterval int      `json:"sample_interval"`
	CorpusDocs     int      `json:"corpus_docs"`
	InitialM       float64  `json:"initial_m"`
	MaxInFlight    int      `json:"max_in_flight"`
	RequestTimeout string   `json:"request_timeout"`
	StateDir       string   `json:"state_dir,omitempty"`
	Controllers    []string `json:"controllers"`
}

// readyzResponse is the /readyz JSON shape.
type readyzResponse struct {
	Ready   bool     `json:"ready"`
	Reasons []string `json:"reasons,omitempty"`
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness only: the process is up and the mux is serving. A
		// degraded service is still alive — restarting it would not help
		// — so /healthz stays 200 while /readyz goes 503.
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /search", s.withResilience(s.handleSearch))
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /config", s.handleConfig)
	mux.HandleFunc("GET /model", s.handleModel)
	mux.HandleFunc("POST /budget", s.handleBudget)
	return mux
}

// modelResponse is the /model JSON shape: per-controller candidate
// settings derived from the calibrated model, the raw material for the
// coordinator's CombineSearchOpt decomposition of the fleet SLA into
// per-shard budgets.
type modelResponse struct {
	Controllers []modelControllerRow `json:"controllers"`
}

type modelControllerRow struct {
	Name      string       `json:"name"`
	BaseLevel float64      `json:"base_level"`
	Levels    []modelLevel `json:"levels"`
}

type modelLevel struct {
	Level    float64 `json:"level"`
	PredLoss float64 `json:"pred_loss"`
	Speedup  float64 `json:"speedup"`
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	resp := modelResponse{}
	for _, name := range s.reg.Names() {
		m := s.models[name]
		if m == nil {
			continue
		}
		row := modelControllerRow{Name: name, BaseLevel: float64(s.engine.Docs())}
		for _, lvl := range m.Levels() {
			row.Levels = append(row.Levels, modelLevel{
				Level:    lvl,
				PredLoss: m.PredictLoss(lvl),
				Speedup:  m.Speedup(lvl),
			})
		}
		resp.Controllers = append(resp.Controllers, row)
	}
	writeJSON(w, resp)
}

// budgetRequest is the POST /budget JSON shape: the fleet control plane
// pushing one controller's approximation level (the paper's M). The
// handler is idempotent — pushing the same budget twice leaves the same
// state — so coordinator retries are safe.
type budgetRequest struct {
	Controller string  `json:"controller"`
	Level      float64 `json:"level"`
}

type budgetResponse struct {
	Controller string  `json:"controller"`
	Level      float64 `json:"level"`
	Applied    bool    `json:"applied"`
}

func (s *Server) handleBudget(w http.ResponseWriter, r *http.Request) {
	var req budgetRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		http.Error(w, "bad budget body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Controller == "" {
		req.Controller = snapshotName
	}
	loop := s.loops[req.Controller]
	if loop == nil {
		http.Error(w, "unknown controller "+req.Controller, http.StatusNotFound)
		return
	}
	if !(req.Level > 0) || math.IsInf(req.Level, 0) {
		http.Error(w, "level must be a positive finite number", http.StatusBadRequest)
		return
	}
	loop.SetLevel(req.Level)
	s.ops.BudgetPushes.Add(1)
	writeJSON(w, budgetResponse{Controller: req.Controller, Level: loop.Level(), Applied: true})
}

// withResilience wraps a handler with the in-flight cap (shed with 503
// + Retry-After instead of queuing unboundedly). The per-request
// deadline is NOT a context here: context.WithTimeout allocates a
// timer and a context per request, so the serving path instead carries
// an explicit deadline time (see serveQuery), which costs one time.Now
// read at entry and nothing on the allocator.
func (s *Server) withResilience(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.MaxInFlight > 0 {
			if s.inFlight.Add(1) > int64(s.cfg.MaxInFlight) {
				s.inFlight.Add(-1)
				s.ops.Shed.Add(1)
				w.Header().Set("Retry-After", "1")
				http.Error(w, "overloaded: request shed", http.StatusServiceUnavailable)
				return
			}
			defer s.inFlight.Add(-1)
		}
		h(w, r)
	}
}

// requestDeadline computes the explicit deadline for one request; the
// zero time means no deadline.
func (s *Server) requestDeadline() time.Time {
	if s.cfg.RequestTimeout > 0 {
		return time.Now().Add(s.cfg.RequestTimeout)
	}
	return time.Time{}
}

// degradedReasons reports why the service is not at full quality (empty
// when it is). Every registered controller contributes its breaker
// state, so a server hosting several approximation sites reports which
// one is degraded.
func (s *Server) degradedReasons() []string {
	var reasons []string
	for _, c := range s.reg.Controllers() {
		if b := c.Breaker(); b.State != core.BreakerClosed {
			reasons = append(reasons, "breaker-"+b.State.String()+"("+c.Name()+")")
		}
	}
	if s.cfg.MaxInFlight > 0 && s.inFlight.Load() >= int64(s.cfg.MaxInFlight) {
		reasons = append(reasons, "shedding")
	}
	return reasons
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	reasons := s.degradedReasons()
	resp := readyzResponse{Ready: len(reasons) == 0, Reasons: reasons}
	if !resp.Ready {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(resp)
		return
	}
	writeJSON(w, resp)
}

// docScanner is the incremental scan surface serveQuery drives — both
// the disjunctive Scan and the conjunctive ScanAnd satisfy it.
type docScanner interface {
	Step() bool
	Processed() int
	TopNInto([]int) []int
	TopNResultsInto([]search.Result) []search.Result
}

// serveScratch is the pooled per-request working set of the /search
// path: the scanners, the response struct with its docs slice, and the
// JSON encode buffer. One pool Get serves the whole request; nothing
// on the warm path touches the allocator (gated by
// TestServeWarmPathZeroAlloc and check.sh).
type serveScratch struct {
	scan    search.Scan
	scanAnd search.ScanAnd
	resp    searchResponse
	buf     []byte
	// wantScores asks serveQuery for the score-bearing page; results and
	// scores are its reusable buffers (resp.Scores is nil on the plain
	// path, so the backing array is retained here).
	wantScores bool
	results    []search.Result
	scores     []float64
}

var scratchPool = sync.Pool{New: func() any { return new(serveScratch) }}

func (sc *serveScratch) release() {
	sc.resp.Query = "" // drop the cached-echo reference
	scratchPool.Put(sc)
}

// serveQuery runs one query's scan under the given loop controller into
// sc.resp, honoring the client context (cancellation) and the explicit
// deadline: if either expires mid-scan the partial results scored so
// far are returned, marked degraded. and selects the conjunctive QoS
// comparison (the monitored precise rerun must execute the same
// retrieval semantics as the approximated scan).
func (s *Server) serveQuery(ctx context.Context, deadline time.Time, loop *core.Loop, scan docScanner, q search.Query, feat core.Features, and bool, sc *serveScratch) error {
	qos := serveQoSPool.Get().(*serveQoS)
	qos.engine, qos.query, qos.topN = s.engine, q, s.cfg.TopN
	qos.chaos = s.cfg.Chaos
	qos.and = and
	exec, err := loop.ExecFeat(qos, feat)
	if err != nil {
		qos.release()
		return err
	}
	expired := func() bool {
		return ctx.Err() != nil || (!deadline.IsZero() && time.Now().After(deadline))
	}
	i := 0
	// An already-expired deadline still serves (an empty page beats an
	// error); mid-scan, the deadline check is amortized over 64 scored
	// documents so the fast path stays a couple of instructions per
	// iteration.
	degraded := expired()
	for !degraded && exec.Continue(i) && scan.Step() {
		i++
		if i&0x3f == 0 && expired() {
			degraded = true
		}
	}
	// Finish is the controller's last use of qos (Loss runs inside it),
	// so the adapter can be recycled right after.
	res := exec.Finish(i)
	qos.release()
	if degraded {
		s.ops.DeadlinePartial.Add(1)
		s.ops.Degraded.Add(1)
	}
	s.queries.Add(1)
	s.docsScored.Add(int64(scan.Processed()))
	if res.Monitored && !res.ContainedPanic && !degraded {
		s.monitoredFullDocs.Add(int64(scan.Processed()))
		s.monitoredQueries.Add(1)
	}
	sc.resp = searchResponse{
		Docs:          sc.resp.Docs,
		Scores:        nil,
		DocsScored:    scan.Processed(),
		Approximated:  res.Approximated,
		MonitoredScan: res.Monitored,
		Degraded:      degraded,
	}
	if sc.wantScores {
		// The coordinator's merge needs exact scores; split the ranked
		// (doc, score) page into the two parallel response arrays.
		sc.results = scan.TopNResultsInto(sc.results[:0])
		docs := sc.resp.Docs[:0]
		scores := sc.scores[:0]
		for _, r := range sc.results {
			docs = append(docs, int(r.Doc))
			scores = append(scores, r.Score)
		}
		sc.resp.Docs, sc.resp.Scores, sc.scores = docs, scores, scores
	} else {
		sc.resp.Docs = scan.TopNInto(sc.resp.Docs)
	}
	return nil
}

// parsedQuery resolves the raw q parameter value through the
// preparsed-query cache; a miss unescapes, tokenizes, computes the
// query's Select-stage features, and populates the cache. A nil return
// means the query was empty or unparseable (the caller 400s). cached
// reports whether the parse was served from the cache (the hit state
// feeds the feature vector's Aux2).
func (s *Server) parsedQuery(rawQ string) (cq *cachedQuery, cached bool) {
	if cq := s.qcache.get(rawQ); cq != nil {
		s.ops.QueryCacheHits.Add(1)
		return cq, true
	}
	s.ops.QueryCacheMisses.Add(1)
	qstr, err := url.QueryUnescape(rawQ)
	if err != nil || strings.TrimSpace(qstr) == "" {
		return nil, false
	}
	terms := s.termsOf(qstr)
	cq = &cachedQuery{echo: qstr, terms: terms, feat: s.queryFeat(terms)}
	s.qcache.put(rawQ, cq)
	return cq, false
}

// handleSearch serves one query. The handler is side-effect-free per
// request by design — retries and hedged duplicates from a coordinator
// are safe: serving the same query twice touches no state beyond
// monotonic counters (queries/docs-scored/ops) and the controller's
// monitored-sampling stream, and returns the same ranked page both
// times (TestSearchHandlerIdempotent). Keep it that way: any per-query
// mutation added here must be idempotent or moved off this path.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	rawQ, ok := rawParam(r.URL.RawQuery, "q")
	if !ok || rawQ == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	cq, cached := s.parsedQuery(rawQ)
	if cq == nil {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	q := search.Query{Terms: cq.terms}
	feat := cq.feat
	if cached {
		feat.Aux2 = 1
	}
	mode, _ := rawParam(r.URL.RawQuery, "mode")
	scoresParam, _ := rawParam(r.URL.RawQuery, "scores")
	wantScores := scoresParam == "1"
	switch mode {
	case "", "or":
		sc := scratchPool.Get().(*serveScratch)
		sc.wantScores = wantScores
		sc.scan.Reset(s.engine, q, s.cfg.TopN)
		if err := s.serveQuery(r.Context(), s.requestDeadline(), s.loop, &sc.scan, q, feat, false, sc); err != nil {
			sc.release()
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		sc.resp.Query = cq.echo
		writeSearchJSON(w, sc)
		sc.release()
	case "and":
		if s.and != nil {
			// The conjunctive scan is its own registered approximation
			// site, with its own calibrated model and controller.
			sc := scratchPool.Get().(*serveScratch)
			sc.wantScores = wantScores
			sc.scanAnd.Reset(s.engine, q, s.cfg.TopN)
			if err := s.serveQuery(r.Context(), s.requestDeadline(), s.and, &sc.scanAnd, q, feat, true, sc); err != nil {
				sc.release()
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			sc.resp.Query = cq.echo
			writeSearchJSON(w, sc)
			sc.release()
			return
		}
		// Without ApproxAnd, strict conjunctive queries bypass
		// approximation: conjunctive match sets are short enough to serve
		// precisely.
		docs, n := s.engine.SearchAnd(q, s.cfg.TopN, 0)
		s.queries.Add(1)
		s.docsScored.Add(int64(n))
		writeJSON(w, &searchResponse{Query: cq.echo, Docs: docs, DocsScored: n})
	default:
		http.Error(w, "mode must be 'or' or 'and'", http.StatusBadRequest)
	}
}

// jsonContentType is the shared Content-Type value, stored directly
// into the header map: Header().Set allocates a fresh one-element
// slice per call.
var jsonContentType = []string{"application/json"}

// writeSearchJSON encodes sc.resp through the scratch buffer and the
// hand-rolled encoder (jsonfast.go) — the alloc-free analogue of
// writeJSON for the /search shape.
func writeSearchJSON(w http.ResponseWriter, sc *serveScratch) {
	sc.buf = appendSearchJSON(sc.buf[:0], &sc.resp)
	h := w.Header()
	if len(h["Content-Type"]) == 0 {
		h["Content-Type"] = jsonContentType
	}
	_, _ = w.Write(sc.buf)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	execs, monitored, meanLoss := s.loop.Stats()
	scored := s.docsScored.Load()
	// Estimate the precise-equivalent work from the monitored full
	// scans: mean full-scan size times queries served.
	var precise int64
	if mq := s.monitoredQueries.Load(); mq > 0 {
		precise = s.monitoredFullDocs.Load() / mq * s.queries.Load()
	}
	saved := 0.0
	if precise > 0 {
		saved = 1 - float64(scored)/float64(precise)
		if saved < 0 {
			saved = 0
		}
	}
	reasons := s.degradedReasons()
	brk := s.loop.Breaker()
	writeJSON(w, statsResponse{
		Queries:           execs,
		Monitored:         monitored,
		MeanMonitoredLoss: meanLoss,
		CurrentM:          s.loop.Level(),
		DocsScored:        scored,
		DocsPrecise:       precise,
		WorkSavedFraction: saved,
		Degraded:          len(reasons) > 0,
		DegradedReasons:   reasons,
		BreakerState:      brk.State.String(),
		BreakerTrips:      brk.Trips,
		ContainedPanics:   brk.ContainedPanics,
		InFlight:          s.inFlight.Load(),
		Restore:           s.restoreNote,
		RestoreDetail:     s.restoreReport,
		Controllers:       metrics.CollectControllers(s.reg),
		Ops:               s.ops.Snapshot(),
	})
}

func (s *Server) handleConfig(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, configResponse{
		SLA:            s.cfg.SLA,
		TopN:           s.cfg.TopN,
		SampleInterval: s.cfg.SampleInterval,
		CorpusDocs:     s.engine.Docs(),
		InitialM:       s.loop.Level(),
		MaxInFlight:    s.cfg.MaxInFlight,
		RequestTimeout: s.cfg.RequestTimeout.String(),
		StateDir:       s.cfg.StateDir,
		Controllers:    s.reg.Names(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Loop exposes the match-loop controller, for operational tooling and
// tests.
func (s *Server) Loop() *core.Loop { return s.loop }

// AndLoop exposes the conjunctive-scan controller (nil unless
// Config.ApproxAnd).
func (s *Server) AndLoop() *core.Loop { return s.and }

// Registry exposes the controller registry, for operational tooling and
// tests.
func (s *Server) Registry() *core.Registry { return s.reg }

// Engine exposes the search engine, for tests.
func (s *Server) Engine() *search.Engine { return s.engine }

// Ops exposes the operational counters, for tooling and tests.
func (s *Server) Ops() *metrics.OpsCounters { return &s.ops }

// serveQoS adapts a served query to core.LoopQoS. Adapters are pooled so
// the per-query fast path allocates nothing beyond the scan itself. The
// chaos injector hooks live here: the QoS callbacks are exactly the
// user-code surface the controller's panic containment guards, so this
// is where the fault-injection harness aims.
type serveQoS struct {
	engine   *search.Engine
	query    search.Query
	topN     int
	recorded []int
	chaos    *chaos.Injector
	// and selects the conjunctive retrieval for both the monitored
	// snapshot and the precise rerun, matching the scan being judged.
	and bool
}

var serveQoSPool = sync.Pool{New: func() any { return new(serveQoS) }}

func (q *serveQoS) release() {
	*q = serveQoS{}
	serveQoSPool.Put(q)
}

func (q *serveQoS) Record(iter int) {
	q.chaos.MaybeDelay("qos.record")
	q.chaos.MaybePanic("qos.record")
	if q.and {
		q.recorded, _ = q.engine.SearchAnd(q.query, q.topN, iter)
	} else {
		q.recorded, _ = q.engine.Search(q.query, q.topN, iter)
	}
}

func (q *serveQoS) Loss(int) float64 {
	q.chaos.MaybeDelay("qos.loss")
	q.chaos.MaybePanic("qos.loss")
	var precise []int
	if q.and {
		precise, _ = q.engine.SearchAnd(q.query, q.topN, 0)
	} else {
		precise, _ = q.engine.Search(q.query, q.topN, 0)
	}
	return metrics.QueryLoss(precise, q.recorded)
}

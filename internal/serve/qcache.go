package serve

import (
	"strings"
	"sync"

	"green/internal/core"
)

// queryCache memoizes parsed queries keyed on the *raw, still-escaped*
// q parameter value. The workload generator (internal/workload) draws
// queries from a Zipf distribution, so a small cache sized for the head
// absorbs the overwhelming majority of traffic — and a hit skips the
// unescape, tokenize, and hash work entirely, touching no allocator.
//
// The cache is sharded by a cheap string hash so concurrent servers
// don't serialize on one lock, and bounded: a full shard evicts an
// arbitrary resident entry (one map-iteration step — effectively random
// replacement, which is within a few percent of LRU on Zipfian traffic
// and needs no per-hit bookkeeping writes on the read path).
type queryCache struct {
	shards []qcacheShard
	mask   uint32
	perCap int
}

type qcacheShard struct {
	mu sync.RWMutex
	m  map[string]*cachedQuery
}

// cachedQuery is one parsed query: the unescaped echo string for the
// JSON response plus the resolved vocabulary terms. feat is the query's
// precomputed Select-stage feature vector (posting mass and term count)
// so the warm path hands the controller per-input features without
// touching the index or the allocator; its cache-hit flag (Aux2) is
// stamped per request on a copy.
type cachedQuery struct {
	echo  string
	terms []int
	feat  core.Features
}

const qcacheShards = 8

// newQueryCache builds a cache bounded at roughly max entries; max <= 0
// disables caching (get always misses, put discards).
func newQueryCache(max int) *queryCache {
	if max <= 0 {
		return &queryCache{}
	}
	per := max / qcacheShards
	if per < 1 {
		per = 1
	}
	c := &queryCache{shards: make([]qcacheShard, qcacheShards), mask: qcacheShards - 1, perCap: per}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*cachedQuery, per)
	}
	return c
}

// hash is FNV-1a over the key, inlined so the hit path stays
// allocation-free (hash/fnv's New32a allocates its state).
func qcacheHash(key string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

// get returns the cached parse for a raw query value, or nil.
func (c *queryCache) get(rawQ string) *cachedQuery {
	if len(c.shards) == 0 {
		return nil
	}
	sh := &c.shards[qcacheHash(rawQ)&c.mask]
	sh.mu.RLock()
	v := sh.m[rawQ]
	sh.mu.RUnlock()
	return v
}

// put inserts a parsed query. rawQ is cloned: it usually aliases a
// request's URL storage, which must not outlive the request.
func (c *queryCache) put(rawQ string, v *cachedQuery) {
	if len(c.shards) == 0 {
		return
	}
	sh := &c.shards[qcacheHash(rawQ)&c.mask]
	sh.mu.Lock()
	if _, ok := sh.m[rawQ]; !ok {
		if len(sh.m) >= c.perCap {
			for k := range sh.m {
				delete(sh.m, k)
				break
			}
		}
		sh.m[strings.Clone(rawQ)] = v
	}
	sh.mu.Unlock()
}

// len reports the resident entry count (tests).
func (c *queryCache) len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// rawParam extracts the raw (still percent-escaped) value of key from
// an URL query string without allocating: the warm serve path must not
// pay url.Values' map for two known parameters. Only literal,
// unescaped keys are matched — the keys this server defines ("q",
// "mode") have no characters that escape.
func rawParam(raw, key string) (val string, ok bool) {
	for len(raw) > 0 {
		seg := raw
		if i := strings.IndexByte(raw, '&'); i >= 0 {
			seg, raw = raw[:i], raw[i+1:]
		} else {
			raw = ""
		}
		eq := strings.IndexByte(seg, '=')
		if eq < 0 {
			if seg == key {
				return "", true
			}
			continue
		}
		if seg[:eq] == key {
			return seg[eq+1:], true
		}
	}
	return "", false
}

package serve

import (
	"encoding/json"
	"testing"
)

// TestAppendSearchJSONMatchesEncodingJSON pins the hand-rolled encoder
// to encoding/json byte for byte (plus the Encoder's trailing newline)
// across the response shapes the serve path emits, including the
// escaping corners: quotes, backslashes, control bytes, the HTML set
// (<, >, &), and multi-byte UTF-8.
func TestAppendSearchJSONMatchesEncodingJSON(t *testing.T) {
	cases := []searchResponse{
		{Query: "alpha beta", Docs: []int{3, 1, 4}, DocsScored: 42, Approximated: true, MonitoredScan: false},
		{Query: "", Docs: nil, DocsScored: 0},
		{Query: "empty docs", Docs: []int{}, DocsScored: 1, MonitoredScan: true},
		{Query: "cut short", Docs: []int{9}, DocsScored: 7, Degraded: true},
		{Query: `quote " backslash \ done`, Docs: []int{0}, DocsScored: 1},
		{Query: "tab\tnewline\ncarriage\rbell\x01end", Docs: []int{1}, DocsScored: 2},
		{Query: "<script>&amp;</script>", Docs: []int{5, 6}, DocsScored: 3, Approximated: true},
		{Query: "héllo wörld → 日本", Docs: []int{-1, 1 << 30}, DocsScored: 1 << 20},
		{Query: "scored", Docs: []int{3, 1}, Scores: []float64{12.75, 3.5}, DocsScored: 9},
		{Query: "scored empty", Docs: []int{1}, Scores: []float64{}, DocsScored: 1},
		{Query: "scored corners", Docs: []int{1, 2, 3, 4, 5, 6},
			Scores: []float64{0, -0.25, 1e-7, 2.5e21, 1e21, 123456789.123}, DocsScored: 6, Degraded: true},
	}
	for _, r := range cases {
		want, err := json.Marshal(&r)
		if err != nil {
			t.Fatal(err)
		}
		got := appendSearchJSON(nil, &r)
		if string(got) != string(want)+"\n" {
			t.Errorf("query %q:\n got %s\nwant %s\\n", r.Query, got, want)
		}
	}
}

// TestAppendJSONFloatMatchesEncodingJSON sweeps the float encoder over
// deterministic pseudo-random values spanning the 'f'/'e' format
// boundary, pinning it to encoding/json digit for digit.
func TestAppendJSONFloatMatchesEncodingJSON(t *testing.T) {
	vals := []float64{0, -0, 1, -1, 0.1, 1e-6, 9.99e-7, 1e21, 9.99e20, -1e21, 2e-9, -3.25e-8, 1e308, 5e-324}
	// A deterministic LCG sweep: mantissa/exponent combinations without
	// pulling math/rand into a non-calibration test path.
	x := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 2000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		m := float64(x%(1<<52)) / float64(uint64(1)<<(x%60))
		if x%2 == 0 {
			m = -m
		}
		vals = append(vals, m)
	}
	for _, v := range vals {
		want, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		if got := appendJSONFloat(nil, v); string(got) != string(want) {
			t.Errorf("float %v: got %s, want %s", v, got, want)
		}
	}
}

// TestAppendSearchJSONReusesBuffer checks the append contract: an
// adequately sized buffer is reused without allocating.
func TestAppendSearchJSONReusesBuffer(t *testing.T) {
	r := searchResponse{Query: "warm", Docs: []int{1, 2, 3}, DocsScored: 30, Approximated: true}
	buf := appendSearchJSON(nil, &r)
	allocs := testing.AllocsPerRun(100, func() {
		buf = appendSearchJSON(buf[:0], &r)
	})
	if allocs != 0 {
		t.Errorf("warm encode allocates %.1f times, want 0", allocs)
	}
}

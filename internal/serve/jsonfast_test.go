package serve

import (
	"encoding/json"
	"testing"
)

// TestAppendSearchJSONMatchesEncodingJSON pins the hand-rolled encoder
// to encoding/json byte for byte (plus the Encoder's trailing newline)
// across the response shapes the serve path emits, including the
// escaping corners: quotes, backslashes, control bytes, the HTML set
// (<, >, &), and multi-byte UTF-8.
func TestAppendSearchJSONMatchesEncodingJSON(t *testing.T) {
	cases := []searchResponse{
		{Query: "alpha beta", Docs: []int{3, 1, 4}, DocsScored: 42, Approximated: true, MonitoredScan: false},
		{Query: "", Docs: nil, DocsScored: 0},
		{Query: "empty docs", Docs: []int{}, DocsScored: 1, MonitoredScan: true},
		{Query: "cut short", Docs: []int{9}, DocsScored: 7, Degraded: true},
		{Query: `quote " backslash \ done`, Docs: []int{0}, DocsScored: 1},
		{Query: "tab\tnewline\ncarriage\rbell\x01end", Docs: []int{1}, DocsScored: 2},
		{Query: "<script>&amp;</script>", Docs: []int{5, 6}, DocsScored: 3, Approximated: true},
		{Query: "héllo wörld → 日本", Docs: []int{-1, 1 << 30}, DocsScored: 1 << 20},
	}
	for _, r := range cases {
		want, err := json.Marshal(&r)
		if err != nil {
			t.Fatal(err)
		}
		got := appendSearchJSON(nil, &r)
		if string(got) != string(want)+"\n" {
			t.Errorf("query %q:\n got %s\nwant %s\\n", r.Query, got, want)
		}
	}
}

// TestAppendSearchJSONReusesBuffer checks the append contract: an
// adequately sized buffer is reused without allocating.
func TestAppendSearchJSONReusesBuffer(t *testing.T) {
	r := searchResponse{Query: "warm", Docs: []int{1, 2, 3}, DocsScored: 30, Approximated: true}
	buf := appendSearchJSON(nil, &r)
	allocs := testing.AllocsPerRun(100, func() {
		buf = appendSearchJSON(buf[:0], &r)
	})
	if allocs != 0 {
		t.Errorf("warm encode allocates %.1f times, want 0", allocs)
	}
}

package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestFeatureEdges covers the quantile-edge derivation: ascending cut
// points, deduplication of collapsed quantiles, the padded top edge,
// and the degenerate single-value distribution.
func TestFeatureEdges(t *testing.T) {
	keys := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	edges := featureEdges(keys, 4)
	if edges == nil {
		t.Fatal("featureEdges returned nil for a spread distribution")
	}
	if len(edges) != 5 {
		t.Fatalf("edges = %v, want 5 quartile edges", edges)
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			t.Fatalf("edges %v not strictly ascending", edges)
		}
	}
	if top := edges[len(edges)-1]; top != 16 {
		t.Errorf("top edge = %v, want 2x the observed maximum (16)", top)
	}

	// All-equal keys: one padded bucket, still usable.
	edges = featureEdges([]float64{3, 3, 3}, 4)
	if len(edges) != 2 || edges[0] != 3 || edges[1] <= 3 {
		t.Errorf("degenerate distribution edges = %v, want one padded bucket", edges)
	}

	if featureEdges(nil, 4) != nil {
		t.Error("featureEdges(nil) should be nil")
	}
}

// TestServeSelectorEndToEnd boots the service with the proactive
// selector, serves traffic, and checks the Select stage actually
// decided levels (hits advance) and that the /stats controllers rows
// surface the selector counters.
func TestServeSelectorEndToEnd(t *testing.T) {
	s, err := New(Config{Seed: 7, CalibrationQueries: 80, CorpusDocs: 2000,
		SampleInterval: 4, Selector: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.Loop().Selector() == nil {
		t.Fatal("Selector: true did not install a selector on the match loop")
	}
	h := s.Handler()
	queries := []string{"alpha", "beta+gamma", "delta+epsilon+zeta", "alpha", "eta"}
	for i := 0; i < 40; i++ {
		req := httptest.NewRequest(http.MethodGet, "/search?q="+queries[i%len(queries)], nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("search returned %d: %s", w.Code, w.Body.String())
		}
	}
	st := s.Loop().SelectorStats()
	if !st.Installed {
		t.Error("SelectorStats.Installed = false with a selector installed")
	}
	if st.Hits == 0 {
		t.Errorf("selector hits = 0 after 40 served queries (fallbacks=%d overrides=%d)",
			st.Fallbacks, st.Overrides)
	}

	// The /stats surface carries the same counters per controller.
	req := httptest.NewRequest(http.MethodGet, "/stats", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	var resp statsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range resp.Controllers {
		if row.Name == snapshotName {
			found = true
			if !row.Selector.Installed || row.Selector.Hits != st.Hits {
				t.Errorf("/stats selector row = %+v, want installed with %d hits", row.Selector, st.Hits)
			}
			if row.SampleInterval == 0 {
				t.Error("/stats sample_interval = 0, want the live interval")
			}
		}
	}
	if !found {
		t.Fatalf("no %s row in /stats controllers", snapshotName)
	}
}

// TestServeSelectorOffNoCounters: without Config.Selector the Feat
// routing must be inert — no selector installed, no Select-stage
// counters ticking.
func TestServeSelectorOffNoCounters(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	for i := 0; i < 10; i++ {
		req := httptest.NewRequest(http.MethodGet, "/search?q=alpha+beta", nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
	}
	st := s.Loop().SelectorStats()
	if st.Installed || st.Hits != 0 || st.Fallbacks != 0 || st.Overrides != 0 {
		t.Errorf("selector counters ticked without a selector: %+v", st)
	}
}

// TestServeWarmPathZeroAllocSelector is the allocation gate for the
// proactive path: routing every query through ExecFeat with an
// installed selector must stay allocation-free once warm, exactly like
// the reactive path.
func TestServeWarmPathZeroAllocSelector(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race detector instrumentation allocates; the allocation budget only holds in a plain build")
	}
	s, err := New(Config{Seed: 7, CalibrationQueries: 60, CorpusDocs: 2000,
		SampleInterval: 1 << 30, Selector: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.Loop().Selector() == nil {
		t.Fatal("no selector installed")
	}
	h := s.withResilience(s.handleSearch)
	req := httptest.NewRequest(http.MethodGet, "/search?q=alpha+beta", nil)
	w := &nullRW{h: make(http.Header, 4)}
	for i := 0; i < 16; i++ {
		h(w, req)
	}
	avg := testing.AllocsPerRun(200, func() { h(w, req) })
	if avg != 0 {
		t.Fatalf("warm selector /search path allocates %.2f times per request, want 0", avg)
	}
}

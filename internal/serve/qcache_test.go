package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestQueryCachePutGet(t *testing.T) {
	c := newQueryCache(64)
	if got := c.get("q=alpha"); got != nil {
		t.Fatalf("cold get = %v, want nil", got)
	}
	v := &cachedQuery{echo: "alpha", terms: []int{1, 2}}
	c.put("alpha", v)
	if got := c.get("alpha"); got != v {
		t.Fatalf("get after put = %v, want %v", got, v)
	}
	if c.len() != 1 {
		t.Errorf("len = %d, want 1", c.len())
	}
	// A second put under the same key keeps the resident entry.
	c.put("alpha", &cachedQuery{echo: "other"})
	if got := c.get("alpha"); got != v {
		t.Errorf("duplicate put replaced resident entry")
	}
}

func TestQueryCacheBounded(t *testing.T) {
	const max = 16
	c := newQueryCache(max)
	for i := 0; i < 10*max; i++ {
		key := fmt.Sprintf("q%d", i)
		c.put(key, &cachedQuery{echo: key})
	}
	if n := c.len(); n > max {
		t.Errorf("cache holds %d entries, bound is %d", n, max)
	}
	if n := c.len(); n == 0 {
		t.Error("eviction emptied the cache entirely")
	}
}

func TestQueryCacheDisabled(t *testing.T) {
	c := newQueryCache(0)
	c.put("alpha", &cachedQuery{echo: "alpha"})
	if got := c.get("alpha"); got != nil {
		t.Errorf("disabled cache returned %v", got)
	}
	if c.len() != 0 {
		t.Errorf("disabled cache len = %d", c.len())
	}
}

func TestRawParam(t *testing.T) {
	cases := []struct {
		raw, key, val string
		ok            bool
	}{
		{"q=alpha+beta&mode=and", "q", "alpha+beta", true},
		{"q=alpha+beta&mode=and", "mode", "and", true},
		{"mode=and&q=x", "q", "x", true},
		{"q=alpha", "mode", "", false},
		{"", "q", "", false},
		{"q", "q", "", true},                  // bare key, no '='
		{"q=", "q", "", true},                 // empty value
		{"qq=x&q=y", "q", "y", true},          // key must match exactly, not by prefix
		{"a=1&&q=z", "q", "z", true},          // empty segment skipped
		{"q=%20hi%20", "q", "%20hi%20", true}, // value stays raw (escaped)
		// Malformed %-escapes pass through untouched: rawParam never
		// unescapes, so a bad sequence is the downstream parser's call
		// (parsedQuery rejects it; see TestParsedQueryMalformedEscape).
		{"q=%zz&mode=and", "q", "%zz", true},
		{"q=%", "q", "%", true},
		{"q=100%25+done", "q", "100%25+done", true},
		// '+' is preserved raw — the unescape step decides it means space.
		{"q=a+b+c", "q", "a+b+c", true},
		// Repeated keys: first occurrence wins, matching url.Values.Get.
		{"q=first&q=second", "q", "first", true},
		{"q=&q=second", "q", "", true},
		// Value containing '=': split on the first '=' only.
		{"q=a=b", "q", "a=b", true},
		// Empty key is not the searched key.
		{"=value&q=x", "q", "x", true},
		{"=value", "", "value", true},
		// Trailing separators leave an empty final segment.
		{"q=x&", "q", "x", true},
		{"mode=and&", "q", "", false},
		{"&", "q", "", false},
	}
	for _, c := range cases {
		val, ok := rawParam(c.raw, c.key)
		if val != c.val || ok != c.ok {
			t.Errorf("rawParam(%q, %q) = (%q, %v), want (%q, %v)",
				c.raw, c.key, val, ok, c.val, c.ok)
		}
	}
}

// TestParsedQueryMalformedEscape: a raw value with a broken %-escape is
// rejected (nil, caller 400s), counted as a miss, and never populates
// the cache — so a repeated malformed query cannot turn into a hit on a
// garbage entry.
func TestParsedQueryMalformedEscape(t *testing.T) {
	s := testServer(t)
	misses0 := s.ops.QueryCacheMisses.Load()
	for i := 0; i < 2; i++ {
		if cq, _ := s.parsedQuery("%zz"); cq != nil {
			t.Fatalf("malformed escape parsed to %+v", cq)
		}
	}
	if got := s.ops.QueryCacheMisses.Load(); got != misses0+2 {
		t.Errorf("misses = %d, want %d (malformed queries must not cache)", got, misses0+2)
	}
	// Whitespace-only queries take the same path.
	if cq, _ := s.parsedQuery("+++"); cq != nil {
		t.Errorf("whitespace-only query parsed to %+v", cq)
	}
}

// TestQueryCacheCapacityConcurrent hammers a small cache from many
// goroutines with a keyspace far larger than the bound: the random
// in-shard replacement must keep the resident count at or under the
// bound at every observation point, with reads racing the writers.
// Run under -race in check.sh, this doubles as the locking proof.
func TestQueryCacheCapacityConcurrent(t *testing.T) {
	const max = 16
	c := newQueryCache(max)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("q%d", (w*2000+i)%997)
				if v := c.get(key); v != nil && v.echo != key {
					t.Errorf("cache returned %q for key %q", v.echo, key)
					return
				}
				c.put(key, &cachedQuery{echo: key})
				if n := c.len(); n > max {
					t.Errorf("cache grew to %d entries, bound is %d", n, max)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n := c.len(); n == 0 || n > max {
		t.Errorf("final cache size %d, want in (0, %d]", n, max)
	}
}

// TestQueryCacheCountersConsistent: every request increments exactly one
// of hits/misses, so under concurrent load the two counters must sum to
// the request count — no lost or double-counted updates.
func TestQueryCacheCountersConsistent(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	hits0 := s.ops.QueryCacheHits.Load()
	misses0 := s.ops.QueryCacheMisses.Load()
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// A small rotating query set: plenty of hits and misses
				// interleaved across goroutines.
				path := fmt.Sprintf("/search?q=term%d", (w+i)%5)
				req := httptest.NewRequest(http.MethodGet, path, nil)
				h.ServeHTTP(httptest.NewRecorder(), req)
			}
		}(w)
	}
	wg.Wait()
	hits := s.ops.QueryCacheHits.Load() - hits0
	misses := s.ops.QueryCacheMisses.Load() - misses0
	if hits+misses != workers*perWorker {
		t.Errorf("hits %d + misses %d = %d, want %d", hits, misses, hits+misses, workers*perWorker)
	}
	if hits == 0 {
		t.Error("no hits recorded for a 5-query working set")
	}
}

// TestQueryCacheServesHits drives the same query through the handler
// twice and checks the second request was a cache hit with an identical
// response.
func TestQueryCacheServesHits(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	first := get(t, h, "/search?q=alpha+beta")
	hits0 := s.ops.QueryCacheHits.Load()
	second := get(t, h, "/search?q=alpha+beta")
	if got := s.ops.QueryCacheHits.Load(); got != hits0+1 {
		t.Errorf("cache hits = %d, want %d", got, hits0+1)
	}
	if first.Body.String() != second.Body.String() {
		t.Errorf("cached response differs:\n%s\nvs\n%s", first.Body, second.Body)
	}
	if s.ops.QueryCacheMisses.Load() == 0 {
		t.Error("no misses recorded for the cold request")
	}
}

package serve

import (
	"fmt"
	"testing"
)

func TestQueryCachePutGet(t *testing.T) {
	c := newQueryCache(64)
	if got := c.get("q=alpha"); got != nil {
		t.Fatalf("cold get = %v, want nil", got)
	}
	v := &cachedQuery{echo: "alpha", terms: []int{1, 2}}
	c.put("alpha", v)
	if got := c.get("alpha"); got != v {
		t.Fatalf("get after put = %v, want %v", got, v)
	}
	if c.len() != 1 {
		t.Errorf("len = %d, want 1", c.len())
	}
	// A second put under the same key keeps the resident entry.
	c.put("alpha", &cachedQuery{echo: "other"})
	if got := c.get("alpha"); got != v {
		t.Errorf("duplicate put replaced resident entry")
	}
}

func TestQueryCacheBounded(t *testing.T) {
	const max = 16
	c := newQueryCache(max)
	for i := 0; i < 10*max; i++ {
		key := fmt.Sprintf("q%d", i)
		c.put(key, &cachedQuery{echo: key})
	}
	if n := c.len(); n > max {
		t.Errorf("cache holds %d entries, bound is %d", n, max)
	}
	if n := c.len(); n == 0 {
		t.Error("eviction emptied the cache entirely")
	}
}

func TestQueryCacheDisabled(t *testing.T) {
	c := newQueryCache(0)
	c.put("alpha", &cachedQuery{echo: "alpha"})
	if got := c.get("alpha"); got != nil {
		t.Errorf("disabled cache returned %v", got)
	}
	if c.len() != 0 {
		t.Errorf("disabled cache len = %d", c.len())
	}
}

func TestRawParam(t *testing.T) {
	cases := []struct {
		raw, key, val string
		ok            bool
	}{
		{"q=alpha+beta&mode=and", "q", "alpha+beta", true},
		{"q=alpha+beta&mode=and", "mode", "and", true},
		{"mode=and&q=x", "q", "x", true},
		{"q=alpha", "mode", "", false},
		{"", "q", "", false},
		{"q", "q", "", true},                  // bare key, no '='
		{"q=", "q", "", true},                 // empty value
		{"qq=x&q=y", "q", "y", true},          // key must match exactly, not by prefix
		{"a=1&&q=z", "q", "z", true},          // empty segment skipped
		{"q=%20hi%20", "q", "%20hi%20", true}, // value stays raw (escaped)
	}
	for _, c := range cases {
		val, ok := rawParam(c.raw, c.key)
		if val != c.val || ok != c.ok {
			t.Errorf("rawParam(%q, %q) = (%q, %v), want (%q, %v)",
				c.raw, c.key, val, ok, c.val, c.ok)
		}
	}
}

// TestQueryCacheServesHits drives the same query through the handler
// twice and checks the second request was a cache hit with an identical
// response.
func TestQueryCacheServesHits(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	first := get(t, h, "/search?q=alpha+beta")
	hits0 := s.ops.QueryCacheHits.Load()
	second := get(t, h, "/search?q=alpha+beta")
	if got := s.ops.QueryCacheHits.Load(); got != hits0+1 {
		t.Errorf("cache hits = %d, want %d", got, hits0+1)
	}
	if first.Body.String() != second.Body.String() {
		t.Errorf("cached response differs:\n%s\nvs\n%s", first.Body, second.Body)
	}
	if s.ops.QueryCacheMisses.Load() == 0 {
		t.Error("no misses recorded for the cold request")
	}
}

//go:build race

package serve

// raceDetectorEnabled reports whether this test binary was built with
// -race; the allocation-budget gate skips itself there, since race
// instrumentation allocates on paths that are clean in a plain build.
const raceDetectorEnabled = true
